//! A MemC3-style bounded concurrent cache: cuckoo+ hashing with CLOCK
//! eviction.
//!
//! The paper's table descends from MemC3 (Fan, Andersen, Kaminsky — NSDI
//! 2013), which pairs exactly this hash table with **CLOCK** eviction —
//! one recency bit per entry, a sweeping hand, second-chance semantics —
//! as a concurrency-friendly LRU approximation for memcached. This crate
//! closes that loop: [`ClockCache`] is the "compact and concurrent
//! memcache" application built on this repository's
//! [`OptimisticCuckooMap`].
//!
//! Design (mirroring MemC3's separation of index and recency state):
//!
//! - the cuckoo map stores `key → (slot, value)` where `slot` indexes a
//!   fixed-size side **slab** of per-entry metadata;
//! - `GET` is the map's lock-free optimistic read plus one relaxed store
//!   to the slab's recency bit — reads never touch the table's cache
//!   lines for writing (preserving the paper's read path) and the
//!   recency bits live in a dense side array exactly as MemC3's CLOCK
//!   bits do;
//! - `SET` allocates a slab slot from a freelist; when the cache is at
//!   capacity the CLOCK hand sweeps the slab: recency bit set → clear
//!   and advance (second chance), clear → evict that slot's key.
//!
//! Recency is approximate under races (a `GET` may mark a slot that was
//! just recycled) — which is CLOCK's nature and why MemC3 chose it: "a
//! compact data structure that can be updated concurrently without
//! locking".

// ORDERING-FILE: stats.counter — hit/miss/eviction counters for the stats contract.
use cuckoo::{InsertError, OptimisticCuckooMap};
use htm::Plain;
use cuckoo::sync2::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use cuckoo::sync2::Mutex;

/// Slab slot states.
const FREE: u8 = 0;
/// Allocated by a `put` whose map insert has not landed yet; invisible to
/// the CLOCK hand.
const SETUP: u8 = 1;
const USED: u8 = 2;
const EVICTING: u8 = 3;

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `get` calls that found the key.
    pub hits: u64,
    /// `get` calls that missed.
    pub misses: u64,
    /// Entries evicted by the CLOCK hand.
    pub evictions: u64,
    /// Second chances granted (recency bit cleared instead of evicting).
    pub second_chances: u64,
    /// Entries newly inserted (`put` of an absent key, successful
    /// `put_if_absent`).
    pub inserts: u64,
    /// In-place replacements (`put` of a present key, successful
    /// `replace`).
    pub updates: u64,
    /// Explicit `delete` calls that removed an entry.
    pub deletes: u64,
    /// Lazy TTL expirations reported by the owner via
    /// [`ClockCache::record_expiration`] (the cache itself has no clock;
    /// the layer that stamps lifetimes also detects their end).
    pub expirations: u64,
}

/// A fixed-capacity concurrent cache with CLOCK eviction over a cuckoo+
/// table. Keys are `u64` (hash upstream identifiers into them); values
/// are any [`Plain`] type.
///
/// # Examples
///
/// ```
/// use cache::ClockCache;
///
/// let cache: ClockCache<[u8; 16]> = ClockCache::new(1000);
/// cache.put(1, [7; 16]);
/// assert_eq!(cache.get(1), Some([7; 16]));     // marks key 1 recently used
/// assert_eq!(cache.get(2), None);
/// for k in 0..2000 {
///     cache.put(k, [0; 16]);                   // CLOCK evicts beyond capacity
/// }
/// assert!(cache.len() <= cache.capacity());
/// ```
pub struct ClockCache<V: Plain> {
    map: OptimisticCuckooMap<u64, (u32, V), 8>,
    /// Slab: per-slot owning key (valid while state == USED).
    slab_keys: Box<[AtomicU64]>,
    /// Slab: CLOCK recency bits.
    recency: Box<[AtomicU8]>,
    /// Slab: slot lifecycle (FREE / USED / EVICTING).
    state: Box<[AtomicU8]>,
    /// Free slot stack.
    free: Mutex<Vec<u32>>,
    /// The CLOCK hand.
    hand: AtomicUsize,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    second_chances: AtomicU64,
    inserts: AtomicU64,
    updates: AtomicU64,
    deletes: AtomicU64,
    expirations: AtomicU64,
    /// Model-checking mutation switch: re-enables the pre-fix delete
    /// ordering (remove the map entry *before* claiming the slot) so the
    /// model tests can prove the checker catches the original ABA bug.
    #[cfg(cuckoo_model)]
    aba_mutation: bool,
}

impl<V: Plain> ClockCache<V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// The underlying table is sized at twice the capacity so inserts
    /// essentially never hit cuckoo-path exhaustion before the CLOCK
    /// hand bounds the population.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(8);
        assert!(capacity < u32::MAX as usize, "slab indices are u32");
        ClockCache {
            map: OptimisticCuckooMap::with_capacity(capacity * 2),
            slab_keys: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            recency: (0..capacity).map(|_| AtomicU8::new(0)).collect(),
            state: (0..capacity).map(|_| AtomicU8::new(FREE)).collect(),
            free: Mutex::new((0..capacity as u32).rev().collect()),
            hand: AtomicUsize::new(0),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            second_chances: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            expirations: AtomicU64::new(0),
            #[cfg(cuckoo_model)]
            aba_mutation: false,
        }
    }

    /// Maximum resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident heap footprint: the cuckoo table (buckets,
    /// lock stripes, sharded counter) plus the CLOCK slab arrays and
    /// free stack. Fixed at construction — the cache never resizes — so
    /// owners can report it (e.g. `cuckood`'s `stats`) without taking
    /// any locks.
    pub fn memory_bytes(&self) -> usize {
        self.map.memory_bytes()
            + self.slab_keys.len() * core::mem::size_of::<AtomicU64>()
            + self.recency.len() * core::mem::size_of::<AtomicU8>()
            + self.state.len() * core::mem::size_of::<AtomicU8>()
            + self.capacity * core::mem::size_of::<u32>()
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            second_chances: self.second_chances.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            expirations: self.expirations.load(Ordering::Relaxed),
        }
    }

    /// Appends the underlying cuckoo table's metric sample set (stripe
    /// contention, seqlock retries, multiget fallbacks, BFS histograms)
    /// under the stable `cuckoo_*` exposition names.
    pub fn metric_samples(&self, out: &mut Vec<metrics::Sample>) {
        self.map.metric_samples(out);
    }

    /// Resets the underlying table's metric families (CLOCK counters —
    /// hits, misses, evictions — are part of the memcached stats
    /// contract and are left untouched).
    pub fn reset_metrics(&self) {
        self.map.reset_metrics();
    }

    /// Records a lazy TTL expiration. The cache stores opaque values and
    /// has no notion of time; an owner that embeds lifetimes in its
    /// values calls this when it deletes an entry because it expired (as
    /// the `cuckood` server does), so `stats` can tell expiry apart from
    /// both eviction and explicit deletion.
    pub fn record_expiration(&self) {
        self.expirations.fetch_add(1, Ordering::Relaxed);
    }

    /// Looks up `key`, marking it recently used on a hit.
    pub fn get(&self, key: u64) -> Option<V> {
        match self.map.get(&key) {
            Some((slot, v)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                // Benign approximation: the slot may have been recycled
                // by a racing eviction; marking a stranger's slot recent
                // only delays its eviction by one sweep.
                // ORDERING: advisory.relaxed
                self.recency[slot as usize].store(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Batched [`get`](Self::get): one result per key, in order, via the
    /// table's software-pipelined multi-key read path. Hits mark recency
    /// and count exactly as single-key `get` does (counters are updated
    /// once per batch).
    pub fn get_many(&self, keys: &[u64], out: &mut Vec<Option<V>>) {
        let mut entries: Vec<Option<(u32, V)>> = Vec::with_capacity(keys.len());
        self.map.get_many_into(keys, &mut entries);
        out.clear();
        out.reserve(keys.len());
        let (mut hits, mut misses) = (0u64, 0u64);
        for entry in entries {
            match entry {
                Some((slot, v)) => {
                    hits += 1;
                    // Same benign race as `get`: marking a recycled slot
                    // recent only delays one eviction.
                    // ORDERING: advisory.relaxed
                    self.recency[slot as usize].store(1, Ordering::Relaxed);
                    out.push(Some(v));
                }
                None => {
                    misses += 1;
                    out.push(None);
                }
            }
        }
        if hits != 0 {
            self.hits.fetch_add(hits, Ordering::Relaxed);
        }
        if misses != 0 {
            self.misses.fetch_add(misses, Ordering::Relaxed);
        }
    }

    /// Inserts or replaces `key → value`, evicting via CLOCK when at
    /// capacity.
    pub fn put(&self, key: u64, value: V) {
        loop {
            if self.replace(key, value) {
                return;
            }
            match self.insert_absent(key, value) {
                Some(true) => return,
                // Racing put of the same key won; retry as a replace.
                Some(false) => continue,
                // Transient table-full squeeze; retry from the top.
                None => continue,
            }
        }
    }

    /// Batched [`put`](Self::put): stores every pair in order, with
    /// per-pair semantics (and counter updates) identical to `put` —
    /// duplicates within a batch included, last write wins. Stage 1 of
    /// the table's batched write pipeline is applied here: each group
    /// of keys has both candidate bucket metadata lines prefetched
    /// with write intent before any is written, so the group's cache
    /// misses overlap instead of serializing. Slot allocation and
    /// CLOCK eviction stay per-pair — the hand is inherently serial.
    pub fn put_many(&self, pairs: &[(u64, V)]) {
        for group in pairs.chunks(cuckoo::sync::WRITE_GROUP) {
            for (key, _) in group {
                self.map.prefetch_write_for(key);
            }
            for (key, value) in group {
                self.put(*key, *value);
            }
        }
    }

    /// Stores `key → value` only if the key is already present
    /// (memcached `replace`). Returns whether it stored.
    pub fn replace(&self, key: u64, value: V) -> bool {
        // Replace in place when present: the read-modify-write runs
        // under the table's pair lock, so the slot index we mark
        // recent is the entry's *current* slot (a stale get+update
        // pair could resurrect a recycled slot index).
        if let Some((slot, _)) = self.map.read_modify_write(&key, |(s, _)| (s, value)) {
            // ORDERING: advisory.relaxed
            self.recency[slot as usize].store(1, Ordering::Relaxed);
            self.updates.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Stores `key → value` only if the key is absent (memcached `add`).
    /// Returns whether it stored. Atomic against racing `put_if_absent`
    /// and `put` of the same key: exactly one writer wins, the rest see
    /// `false`.
    pub fn put_if_absent(&self, key: u64, value: V) -> bool {
        loop {
            match self.insert_absent(key, value) {
                Some(stored) => return stored,
                None => continue,
            }
        }
    }

    /// One attempt to insert an absent key. `Some(true)`: inserted;
    /// `Some(false)`: the key exists; `None`: the table was full even
    /// after an eviction round (caller retries).
    fn insert_absent(&self, key: u64, value: V) -> Option<bool> {
        let slot = self.alloc_slot();
        // ORDERING: publish.release-store
        self.slab_keys[slot as usize].store(key, Ordering::Release);
        // ORDERING: advisory.relaxed
        self.recency[slot as usize].store(1, Ordering::Relaxed);
        match self.map.insert(key, (slot, value)) {
            Ok(()) => {
                // Publish to the CLOCK hand only once the entry is
                // resident.
                // ORDERING: publish.release-store
                self.state[slot as usize].store(USED, Ordering::Release);
                self.inserts.fetch_add(1, Ordering::Relaxed); // ORDERING: stats.counter
                Some(true)
            }
            Err(InsertError::KeyExists) => {
                self.abandon_slot(slot);
                Some(false)
            }
            Err(InsertError::TableFull) => {
                // 2x headroom makes this rare; make room and retry
                // with the same slot.
                self.evict_one();
                match self.map.insert(key, (slot, value)) {
                    Ok(()) => {
                        // ORDERING: publish.release-store
                        self.state[slot as usize].store(USED, Ordering::Release);
                        self.inserts.fetch_add(1, Ordering::Relaxed); // ORDERING: stats.counter
                        Some(true)
                    }
                    Err(InsertError::KeyExists) => {
                        self.abandon_slot(slot);
                        Some(false)
                    }
                    Err(InsertError::TableFull) => {
                        self.abandon_slot(slot);
                        None
                    }
                }
            }
        }
    }

    /// Removes `key`, returning its value.
    ///
    /// Claims the slot (`USED → EVICTING`) *before* removing the map
    /// entry. The reverse order (remove, then flip the state) is an ABA
    /// bug: between the removal and the state change, the CLOCK hand can
    /// observe the orphaned slot, release it, and a racing `put` can
    /// re-allocate it — at which point the delayed state change frees a
    /// slot the new entry still owns, the freelist holds it twice, and
    /// two live entries end up sharing one slot (caught by the churn
    /// test as `len() > capacity`).
    pub fn delete(&self, key: u64) -> Option<V> {
        #[cfg(cuckoo_model)]
        if self.aba_mutation {
            return self.delete_aba_buggy(key);
        }
        loop {
            let (slot, _) = self.map.get(&key)?;
            let si = slot as usize;
            if self.state[si]
                // ORDERING: handoff.acqrel-rmw
                .compare_exchange(USED, EVICTING, Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
            {
                // SETUP (its put is between insert and publish) or
                // EVICTING (the hand owns it); the owner resolves the
                // state promptly — re-read and retry.
                std::hint::spin_loop();
                continue;
            }
            // Exclusive reclamation right on `slot`. Remove only while
            // the entry still references it: the lookup above is
            // optimistic, and the entry may have been re-keyed onto a
            // different slot in between.
            match self.map.remove_if(&key, |(s, _)| *s == slot) {
                Some((_, v)) => {
                    self.deletes.fetch_add(1, Ordering::Relaxed);
                    self.release_slot(slot);
                    return Some(v);
                }
                None => {
                    // The entry moved or a racing delete/evictor got it;
                    // give the slot back to its current owner and
                    // re-examine the key.
                    // ORDERING: publish.release-store
                    self.state[si].store(USED, Ordering::Release);
                }
            }
        }
    }

    /// The pre-PR 1 delete: removes the map entry *first* and only then
    /// frees the slot, without claiming it `USED → EVICTING`. Between
    /// those two steps the CLOCK hand can observe the orphaned USED
    /// slot, fail its `remove_if`, and reclaim the slot itself — after
    /// which our own `release_slot` frees it a second time. Kept (model
    /// builds only, behind [`Self::enable_aba_mutation`]) as the seeded
    /// bug that proves the model checker catches this class of race.
    #[cfg(cuckoo_model)]
    fn delete_aba_buggy(&self, key: u64) -> Option<V> {
        let (slot, v) = self.map.remove(&key)?;
        self.deletes.fetch_add(1, Ordering::Relaxed);
        self.release_slot(slot);
        Some(v)
    }

    /// Model-only: arms [`Self::delete`] with the pre-fix ABA ordering.
    #[cfg(cuckoo_model)]
    pub fn enable_aba_mutation(&mut self) {
        self.aba_mutation = true;
    }

    /// Model-only: one CLOCK sweep, exactly as eviction pressure would
    /// drive it, without needing `capacity` puts to drain the freelist.
    #[cfg(cuckoo_model)]
    pub fn force_evict_one(&self) {
        self.evict_one();
    }

    /// Model-only: clears every recency bit, as a full CLOCK revolution
    /// would — so the next sweep evicts on first encounter instead of
    /// needing the (schedule-deep) second-chance revolution.
    #[cfg(cuckoo_model)]
    pub fn force_clear_recency(&self) {
        for r in self.recency.iter() {
            r.store(0, Ordering::SeqCst);
        }
    }

    /// Model-only invariant check: every freelist slot is FREE and
    /// appears exactly once (a duplicate means a slot was double-freed).
    #[cfg(cuckoo_model)]
    pub fn check_slab_invariants(&self) {
        let free = self.free.lock().expect("freelist mutex poisoned");
        let mut seen = std::collections::HashSet::new();
        for &slot in free.iter() {
            assert!(
                seen.insert(slot),
                "slot {slot} on the freelist twice (double free)"
            );
            assert_eq!(
                self.state[slot as usize].load(Ordering::SeqCst),
                FREE,
                "freelist slot {slot} not in FREE state"
            );
        }
    }

    /// Visits every resident entry without blocking readers (the
    /// underlying table is walked one lock stripe at a time). The view
    /// is *fuzzy* — each entry reflects its value at the moment its
    /// stripe was visited — which is exactly what a persistence snapshot
    /// wants. Returns `false` if a concurrent cuckoo-path displacement
    /// may have hidden an entry from this pass; the caller must discard
    /// what `f` accumulated and retry.
    pub fn scan(&self, mut f: impl FnMut(u64, &V)) -> bool {
        self.map.scan(|k, entry| f(*k, &entry.1))
    }

    /// Deletes every resident entry (memcached `flush_all`), returning
    /// how many were removed. Safe against concurrent writers — each
    /// removal goes through [`delete`](Self::delete)'s slot-claiming
    /// protocol — but not atomic: keys inserted while the flush runs may
    /// survive it. Flushed entries count toward the `deletes` statistic.
    pub fn flush(&self) -> u64 {
        let mut flushed = 0u64;
        loop {
            let mut keys = Vec::new();
            // A displacement can hide a key from one pass; the loop only
            // exits on a clean pass that found nothing.
            let clean = self.scan(|k, _| keys.push(k));
            if keys.is_empty() && clean {
                return flushed;
            }
            for k in keys {
                if self.delete(k).is_some() {
                    flushed += 1;
                }
            }
        }
    }

    /// Pops a free slot (in SETUP state, invisible to the hand), evicting
    /// until one is available.
    fn alloc_slot(&self) -> u32 {
        loop {
            if let Some(slot) = self.free.lock().expect("freelist mutex poisoned").pop() {
                // ORDERING: handoff.acqrel-rmw
                let prev = self.state[slot as usize].swap(SETUP, Ordering::AcqRel);
                debug_assert_eq!(prev, FREE);
                return slot;
            }
            self.evict_one();
        }
    }

    /// Returns a slot to the freelist (caller owns it as USED or
    /// EVICTING).
    fn release_slot(&self, slot: u32) {
        // ORDERING: publish.release-store
        self.state[slot as usize].store(FREE, Ordering::Release);
        self.free.lock().expect("freelist mutex poisoned").push(slot);
    }

    /// Gives up a SETUP slot we own (the hand cannot see SETUP slots, so
    /// the release is unconditional).
    fn abandon_slot(&self, slot: u32) {
        // ORDERING: handoff.acqrel-rmw
        let prev = self.state[slot as usize].swap(FREE, Ordering::AcqRel);
        debug_assert_eq!(prev, SETUP);
        self.free.lock().expect("freelist mutex poisoned").push(slot);
    }

    /// One CLOCK sweep step that frees exactly one slot (or discovers
    /// another thread already did).
    fn evict_one(&self) {
        // Bound the sweep: after two full revolutions every recency bit
        // has been cleared once, so a USED slot must yield.
        for _ in 0..self.capacity * 2 + 1 {
            // ORDERING: alloc.unique-id
            let h = self.hand.fetch_add(1, Ordering::Relaxed) % self.capacity;
            if self.state[h]
                // ORDERING: handoff.acqrel-rmw
                .compare_exchange(USED, EVICTING, Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
            {
                continue; // free, or another evictor owns it
            }
            // ORDERING: handoff.acqrel-rmw
            if self.recency[h].swap(0, Ordering::AcqRel) != 0 {
                // Second chance.
                self.second_chances.fetch_add(1, Ordering::Relaxed); // ORDERING: stats.counter
                // ORDERING: publish.release-store
                self.state[h].store(USED, Ordering::Release);
                continue;
            }
            // ORDERING: publish.acquire-load
            let key = self.slab_keys[h].load(Ordering::Acquire);
            // Remove only while the entry still references this slot: a
            // racing delete + re-put may have re-keyed the entry onto a
            // different slot, and evicting that one would strand it.
            if self
                .map
                .remove_if(&key, |(s, _)| *s == h as u32)
                .is_some()
            {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            // Either we evicted the entry, or its owner died (delete or
            // failed put) and left the release to us: the slot is ours
            // to reclaim in both cases.
            self.release_slot(h as u32);
            return;
        }
        // All slots raced away (deleted/evicted concurrently); let the
        // caller re-check the freelist.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_get_put_delete() {
        let c: ClockCache<u64> = ClockCache::new(100);
        assert_eq!(c.get(1), None);
        c.put(1, 10);
        c.put(2, 20);
        assert_eq!(c.get(1), Some(10));
        c.put(1, 11);
        assert_eq!(c.get(1), Some(11));
        assert_eq!(c.delete(1), Some(11));
        assert_eq!(c.get(1), None);
        assert_eq!(c.len(), 1);
        let s = c.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn get_many_matches_single_gets() {
        let c: ClockCache<u64> = ClockCache::new(256);
        for k in 0..100u64 {
            c.put(k, k * 3);
        }
        // Hits, misses, and duplicates, larger than one pipeline group.
        let keys: Vec<u64> = (0..30).map(|i| if i % 3 == 2 { 1_000 + i } else { i % 7 }).collect();
        let mut out = Vec::new();
        c.get_many(&keys, &mut out);
        assert_eq!(out.len(), keys.len());
        for (k, got) in keys.iter().zip(&out) {
            assert_eq!(*got, c.get(*k), "key {k}");
        }
        // Hit/miss accounting matched the per-key outcomes.
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 2 * keys.len() as u64);
    }

    #[test]
    fn put_many_matches_put_semantics() {
        let c: ClockCache<u64> = ClockCache::new(256);
        c.put(2, 2); // incumbent: batch pair (2, 222) must replace it
        // Inserts, replacements, and an in-batch duplicate (last wins),
        // larger than one pipeline group.
        let pairs: Vec<(u64, u64)> =
            (0..20u64).map(|k| (k, k * 10)).chain([(2, 222), (5, 555), (5, 556)]).collect();
        c.put_many(&pairs);
        assert_eq!(c.get(2), Some(222));
        assert_eq!(c.get(5), Some(556));
        for k in [0u64, 1, 3, 4, 6, 19] {
            assert_eq!(c.get(k), Some(k * 10), "key {k}");
        }
        let s = c.stats();
        assert_eq!(s.inserts, 20, "one insert per distinct new key");
        assert_eq!(s.updates, 4, "incumbent + in-batch duplicates replace in place");
        // Eviction still bounds a batch bigger than the cache.
        let flood: Vec<(u64, u64)> = (1_000..3_000u64).map(|k| (k, k)).collect();
        c.put_many(&flood);
        assert!(c.len() <= c.capacity());
        assert!(c.stats().evictions > 0);
    }

    #[test]
    fn capacity_is_bounded() {
        let c: ClockCache<u64> = ClockCache::new(64);
        for k in 0..10_000u64 {
            c.put(k, k);
        }
        assert!(c.len() <= 64, "resident {} > capacity", c.len());
        assert!(c.stats().evictions >= 10_000 - 64);
    }

    #[test]
    fn second_chance_protects_hot_keys() {
        let c: ClockCache<u64> = ClockCache::new(32);
        // Hot working set.
        for k in 0..8u64 {
            c.put(k, k);
        }
        // Cold scan with periodic hot-key touches.
        for cold in 100..2_000u64 {
            c.put(cold, cold);
            for k in 0..8u64 {
                let _ = c.get(k);
            }
        }
        let surviving = (0..8u64).filter(|k| c.get(*k).is_some()).count();
        assert!(
            surviving >= 7,
            "hot keys should survive a cold scan, kept {surviving}/8"
        );
        assert!(c.stats().second_chances > 0);
    }

    #[test]
    fn untouched_key_is_evicted_first() {
        // Deterministic single-threaded CLOCK semantics: fill, touch all
        // but one, insert one more — the untouched entry goes.
        let c: ClockCache<u64> = ClockCache::new(8);
        for k in 0..8u64 {
            c.put(k, k);
        }
        // `put` sets recency; one full hand sweep will clear everyone
        // once. Touch all but key 3 afterwards so only 3 lacks recency.
        for k in 0..8u64 {
            if k != 3 {
                let _ = c.get(k);
            }
        }
        // First insertion at capacity: hand clears bits one revolution
        // (everyone has recency 1 from put/get), then evicts the first
        // cleared-and-untouched slot. Re-touch survivors between puts to
        // keep them protected.
        c.put(100, 100);
        for k in 0..8u64 {
            if k != 3 {
                let _ = c.get(k);
            }
        }
        c.put(101, 101);
        assert_eq!(c.get(3), None, "untouched key must be evicted");
        let kept = (0..8u64).filter(|&k| k != 3 && c.get(k).is_some()).count();
        assert!(kept >= 6, "touched keys mostly survive, kept {kept}/7");
    }

    #[test]
    fn concurrent_churn_stays_bounded_and_consistent() {
        let c: ClockCache<u64> = ClockCache::new(256);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        let k = t * 1_000_000 + (i % 500);
                        c.put(k, k ^ 0xff);
                        if let Some(v) = c.get(k) {
                            assert_eq!(v, k ^ 0xff, "wrong value for {k}");
                        }
                        if i % 7 == 0 {
                            c.delete(k);
                        }
                    }
                });
            }
        });
        assert!(c.len() <= 256);
        // Slab bookkeeping is consistent: resident entries == used slots.
        let used = c
            .state
            .iter()
            .filter(|s| s.load(Ordering::Relaxed) == USED)
            .count();
        assert_eq!(used, c.len(), "slab/map divergence");
        let free = c.free.lock().unwrap().len();
        assert_eq!(used + free, c.capacity);
    }

    #[test]
    fn add_replace_semantics() {
        let c: ClockCache<u64> = ClockCache::new(64);
        assert!(!c.replace(1, 10), "replace of absent key must fail");
        assert!(c.put_if_absent(1, 10), "add of absent key must store");
        assert!(!c.put_if_absent(1, 11), "add of present key must fail");
        assert_eq!(c.get(1), Some(10));
        assert!(c.replace(1, 12));
        assert_eq!(c.get(1), Some(12));
        let s = c.stats();
        assert_eq!(s.inserts, 1);
        assert_eq!(s.updates, 1);
        assert_eq!(s.deletes, 0);
        c.delete(1);
        assert_eq!(c.stats().deletes, 1);
        c.record_expiration();
        assert_eq!(c.stats().expirations, 1);
    }

    #[test]
    fn racing_adds_store_exactly_once() {
        let c: ClockCache<u64> = ClockCache::new(1024);
        let wins: AtomicU64 = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (c, wins) = (&c, &wins);
                s.spawn(move || {
                    for k in 0..500u64 {
                        if c.put_if_absent(k, k) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 500, "each key admits one add");
        assert_eq!(c.len(), 500);
    }

    #[test]
    fn delete_frees_capacity() {
        let c: ClockCache<u64> = ClockCache::new(16);
        for k in 0..16u64 {
            c.put(k, k);
        }
        assert_eq!(c.len(), 16);
        for k in 0..8u64 {
            c.delete(k);
        }
        assert_eq!(c.len(), 8);
        // Re-fill without evictions of the survivors.
        let evictions_before = c.stats().evictions;
        for k in 100..108u64 {
            c.put(k, k);
        }
        assert_eq!(c.stats().evictions, evictions_before);
        assert_eq!(c.len(), 16);
    }

    #[test]
    fn memory_footprint_is_fixed() {
        let c: ClockCache<[u8; 64]> = ClockCache::new(1024);
        let empty = c.memory_bytes();
        // At least the table's inline entries plus the slab arrays.
        assert!(empty > 1024 * 64);
        for k in 0..10_000u64 {
            c.put(k, [0; 64]);
        }
        // The cache never allocates after construction: same footprint
        // at full occupancy (with evictions churning) as when empty.
        assert_eq!(c.memory_bytes(), empty);
    }
}
