//! Model-checking tests for the ClockCache slot lifecycle (build with
//! `RUSTFLAGS="--cfg cuckoo_model"`).
//!
//! The centerpiece is the PR 1 delete/evict ABA bug: `delete` originally
//! removed the map entry *before* claiming the slot, letting the CLOCK
//! hand reclaim the orphaned slot concurrently — a double free. The bug
//! is kept behind [`ClockCache::enable_aba_mutation`] precisely so these
//! tests can prove the checker finds it (and replays it from a seed),
//! while the shipped ordering passes the same exploration.
#![cfg(cuckoo_model)]

use cache::ClockCache;
use std::sync::Arc;

const EXPLORATION_SEED: u64 = 0xc10c_aba0;
const SCHEDULES: usize = 800;

/// delete(key) racing one CLOCK sweep over a singleton cache: the
/// scenario in which the PR 1 bug double-frees the slot.
fn delete_vs_hand_sweep(mutated: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        let mut cache: ClockCache<u64> = ClockCache::new(8);
        if mutated {
            cache.enable_aba_mutation();
        }
        let cache = Arc::new(cache);
        cache.put(1, 11);
        // As if the hand had already swept once: next encounter evicts
        // instead of granting a second chance (keeps schedules shallow).
        cache.force_clear_recency();

        let deleter = {
            let cache = Arc::clone(&cache);
            loom::thread::spawn(move || {
                cache.delete(1);
            })
        };
        let hand = {
            let cache = Arc::clone(&cache);
            loom::thread::spawn(move || {
                cache.force_evict_one();
            })
        };
        deleter.join().unwrap();
        hand.join().unwrap();
        // The key is gone either way; the slab must be consistent:
        // no slot on the freelist twice, no non-FREE slot on it.
        assert_eq!(cache.get(1), None);
        cache.check_slab_invariants();
    }
}

/// Acceptance criterion: with the ABA mutation armed, bounded
/// exploration must deterministically reproduce the PR 1 race and
/// report a replayable seed.
#[test]
fn aba_mutation_is_caught_with_replayable_seed() {
    let failure = loom::explore(
        loom::Config::random(EXPLORATION_SEED, SCHEDULES),
        delete_vs_hand_sweep(true),
    )
    .expect_err("the pre-fix delete ordering must double-free in some schedule");
    assert!(
        failure.message.contains("freelist twice"),
        "expected the double-free invariant, got: {}",
        failure.message
    );
    let seed = failure.seed.expect("random-walk failures carry a seed");
    println!("ClockCache ABA reproduced; replay with LOOM_SEED={seed}");

    // The reported seed replays the failure deterministically.
    let replayed = loom::explore(
        loom::Config {
            strategy: loom::Strategy::Replay { seed },
            max_schedules: 1,
            ..loom::Config::default()
        },
        delete_vs_hand_sweep(true),
    )
    .expect_err("replaying the reported seed must reproduce the failure");
    assert_eq!(replayed.seed, Some(seed));
    assert!(replayed.message.contains("freelist twice"));
}

/// The shipped ordering (claim `USED → EVICTING` before removing the map
/// entry) survives the identical exploration.
#[test]
fn fixed_delete_ordering_passes_same_exploration() {
    loom::explore(
        loom::Config::random(EXPLORATION_SEED, SCHEDULES),
        delete_vs_hand_sweep(false),
    )
    .expect("the fixed delete ordering must survive every explored schedule");
}

/// Delete racing delete of the same key: exactly one wins, the slab
/// stays consistent.
#[test]
fn concurrent_deletes_free_once() {
    loom::model_with(loom::Config::random(0xdede_0001, 300), || {
        let cache: Arc<ClockCache<u64>> = Arc::new(ClockCache::new(8));
        cache.put(1, 11);
        let t: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                loom::thread::spawn(move || cache.delete(1))
            })
            .collect();
        let wins = t
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|r| r.is_some())
            .count();
        assert_eq!(wins, 1, "exactly one delete must win");
        cache.check_slab_invariants();
    });
}
