//! Wire-protocol property tests.
//!
//! Three claims about `server::proto` are driven generatively here:
//!
//! 1. **Round-trip**: `encode_request` followed by `parse` reproduces the
//!    original request exactly and consumes exactly the encoded bytes,
//!    for every command in the subset.
//! 2. **Incrementality**: every strict prefix of a valid request parses
//!    as `Incomplete` — never a bogus `Ok`, never an `Err` — so a request
//!    arriving one byte at a time is handled identically to one arriving
//!    whole.
//! 3. **Totality**: the parser never panics, on any input. Malformed
//!    input is classified as `ERROR` (unknown command) or `CLIENT_ERROR`
//!    (bad arguments) with a resynchronization offset, or as a clean
//!    close when resynchronization is impossible.

use proptest::prelude::*;
use server::proto::{
    encode_request, parse, ErrorKind, Parsed, Request, StoreVerb, MAX_LINE, MAX_VALUE_SIZE,
};

/// Strategy for one valid key: 1..=32 printable, space-free ASCII bytes.
fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    collection::vec(0x21u8..=0x7e, 1usize..33)
}

/// Re-parse `wire` and demand an exact, fully-consuming round-trip.
fn assert_roundtrip(
    wire: &[u8],
    expect: &Request<'_>,
) -> Result<(), proptest::test_runner::TestCaseError> {
    match parse(wire) {
        Parsed::Ok { request, consumed } => {
            prop_assert_eq!(consumed, wire.len());
            prop_assert_eq!(&request, expect);
        }
        other => prop_assert!(false, "expected Ok, got {:?}", other),
    }
    Ok(())
}

proptest! {
    /// `get`/`gets` with 1..=4 generated keys round-trips.
    #[test]
    fn roundtrip_get(keys in collection::vec(key_strategy(), 1usize..5), with_cas in any::<bool>()) {
        let req = Request::Get {
            keys: keys.iter().map(|k| k.as_slice()).collect(),
            with_cas,
        };
        let mut wire = Vec::new();
        encode_request(&mut wire, &req);
        assert_roundtrip(&wire, &req)?;
    }

    /// `set`/`add`/`replace` round-trips, including binary payloads that
    /// embed `\r\n` (the length prefix frames them) and the `noreply`
    /// flag.
    #[test]
    fn roundtrip_store(
        verb_sel in 0u8..3,
        key in key_strategy(),
        (flags, exptime) in (any::<u32>(), any::<u32>()),
        (data, noreply) in (collection::vec(any::<u8>(), 0usize..600), any::<bool>()),
    ) {
        let verb = [StoreVerb::Set, StoreVerb::Add, StoreVerb::Replace][verb_sel as usize];
        let req = Request::Store {
            verb,
            key: &key,
            flags,
            exptime,
            data: &data,
            noreply,
        };
        let mut wire = Vec::new();
        encode_request(&mut wire, &req);
        assert_roundtrip(&wire, &req)?;
    }

    /// `delete` (with and without `noreply`) round-trips.
    #[test]
    fn roundtrip_delete(key in key_strategy(), noreply in any::<bool>()) {
        let req = Request::Delete { key: &key, noreply };
        let mut wire = Vec::new();
        encode_request(&mut wire, &req);
        assert_roundtrip(&wire, &req)?;
    }

    /// `flush_all`, `replicate`, and `promote` round-trip.
    #[test]
    fn roundtrip_admin(delay in any::<u32>(), noreply in any::<bool>(), lsn in any::<u64>()) {
        let flush = Request::FlushAll { delay, noreply };
        let mut wire = Vec::new();
        encode_request(&mut wire, &flush);
        assert_roundtrip(&wire, &flush)?;

        let rep = Request::Replicate { lsn };
        wire.clear();
        encode_request(&mut wire, &rep);
        assert_roundtrip(&wire, &rep)?;

        wire.clear();
        encode_request(&mut wire, &Request::Promote);
        assert_roundtrip(&wire, &Request::Promote)?;
    }

    /// Every strict prefix of a valid request is `Incomplete`: the parser
    /// neither invents a request from partial bytes nor misreads a
    /// partial frame as a protocol error.
    #[test]
    fn prefixes_are_incomplete(
        key in key_strategy(),
        data in collection::vec(any::<u8>(), 0usize..64),
        cut_sel in any::<u64>(),
    ) {
        let req = Request::Store {
            verb: StoreVerb::Set,
            key: &key,
            flags: 1,
            exptime: 0,
            data: &data,
            noreply: false,
        };
        let mut wire = Vec::new();
        encode_request(&mut wire, &req);
        // Check an arbitrary cut plus the always-interesting last byte.
        let arbitrary_cut = (cut_sel % wire.len() as u64) as usize;
        for cut in [arbitrary_cut, wire.len() - 1] {
            prop_assert_eq!(
                parse(&wire[..cut]),
                Parsed::Incomplete,
                "prefix of {} bytes out of {}",
                cut,
                wire.len()
            );
        }
    }

    /// Feeding a request byte by byte yields exactly one `Ok`, at the
    /// final byte, consuming everything — the incremental contract a
    /// connection relies on.
    #[test]
    fn byte_at_a_time_parses_once(keys in collection::vec(key_strategy(), 1usize..4)) {
        let req = Request::Get {
            keys: keys.iter().map(|k| k.as_slice()).collect(),
            with_cas: false,
        };
        let mut wire = Vec::new();
        encode_request(&mut wire, &req);
        let mut fed = Vec::new();
        for (i, &b) in wire.iter().enumerate() {
            fed.push(b);
            match parse(&fed) {
                Parsed::Incomplete => prop_assert!(i + 1 < wire.len(), "incomplete at final byte"),
                Parsed::Ok { request, consumed } => {
                    prop_assert_eq!(i + 1, wire.len(), "Ok before the frame ended");
                    prop_assert_eq!(consumed, wire.len());
                    prop_assert_eq!(&request, &req);
                }
                Parsed::Err(e) => prop_assert!(false, "spurious error at byte {}: {}", i, e),
            }
        }
    }

    /// Totality under fuzz: random bytes (newline-terminated so the
    /// parser sees a full line) never panic, and every recoverable error
    /// reports a resynchronization offset that actually makes progress
    /// and stays in bounds.
    #[test]
    fn arbitrary_lines_never_panic(mut junk in collection::vec(any::<u8>(), 0usize..128)) {
        junk.push(b'\n');
        match parse(&junk) {
            Parsed::Ok { consumed, .. } => {
                prop_assert!(consumed > 0 && consumed <= junk.len());
            }
            Parsed::Incomplete => {
                // Only possible when the line parsed as a storage header
                // still waiting for its data block.
                prop_assert!(junk.len() <= MAX_LINE + MAX_VALUE_SIZE);
            }
            Parsed::Err(e) => {
                if let Some(n) = e.recover_by {
                    prop_assert!(n > 0 && n <= junk.len(), "recover_by {} of {}", n, junk.len());
                }
            }
        }
    }

    /// After a recoverable error, skipping `recover_by` bytes leaves the
    /// stream aligned on the next command: a well-formed follow-up
    /// request parses cleanly.
    #[test]
    fn resynchronization_reaches_next_command(junk in collection::vec(0x20u8..0x7f, 1usize..40)) {
        // A junk line that happens to spell a storage header would make
        // the parser treat the follow-up command as its data block;
        // vanishingly unlikely, but exclude it for determinism.
        for verb in [b"set".as_slice(), b"add", b"replace"] {
            prop_assume!(!junk.starts_with(verb));
        }
        let mut wire = junk.clone();
        wire.extend_from_slice(b"\r\nversion\r\n");
        match parse(&wire) {
            Parsed::Err(e) => {
                let Some(skip) = e.recover_by else {
                    return Err(proptest::fail_msg(
                        "prop_assert",
                        format_args!("printable junk line must be recoverable"),
                    ));
                };
                match parse(&wire[skip..]) {
                    Parsed::Ok { request, consumed } => {
                        prop_assert_eq!(&request, &Request::Version);
                        prop_assert_eq!(consumed, wire.len() - skip);
                    }
                    other => prop_assert!(false, "after resync: {:?}", other),
                }
            }
            // The junk happened to be a valid command (e.g. "stats"); the
            // property is about errors, so nothing further to check.
            Parsed::Ok { .. } | Parsed::Incomplete => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic malformed-input corpus
// ---------------------------------------------------------------------------

/// What the connection layer should do with a given malformed input.
enum Expect {
    /// `ERROR\r\n`, stream stays usable.
    Unknown,
    /// `CLIENT_ERROR ...\r\n`, stream resynchronizes.
    ClientRecoverable,
    /// `CLIENT_ERROR ...\r\n` then close (`recover_by == None`).
    Close,
}

#[test]
fn malformed_corpus_is_classified_and_never_panics() {
    let huge_decl = format!("set k 0 0 {}\r\n", MAX_VALUE_SIZE + 1);
    let long_key = format!("get {}\r\n", "k".repeat(251));
    let unterminated = vec![b'a'; MAX_LINE + 1];
    let corpus: Vec<(&[u8], Expect, &str)> = vec![
        (b"incr k 1\r\n", Expect::Unknown, "unsupported command"),
        (b"\r\n", Expect::Unknown, "blank line"),
        (b"  \r\n", Expect::Unknown, "spaces-only line"),
        (b"\xff\xfe garbage \x01\r\n", Expect::Unknown, "binary junk command"),
        (b"get\r\n", Expect::ClientRecoverable, "get without key"),
        (long_key.as_bytes(), Expect::ClientRecoverable, "251-byte key"),
        (b"get k\x7fey\r\n", Expect::ClientRecoverable, "control byte in key"),
        (b"set k 0 0 abc\r\n", Expect::ClientRecoverable, "non-numeric byte count"),
        (b"set k 0 0 -1\r\n", Expect::ClientRecoverable, "negative byte count"),
        (b"set k 0 0\r\n", Expect::ClientRecoverable, "missing byte count"),
        (b"set k 0\r\n", Expect::ClientRecoverable, "missing exptime and bytes"),
        (b"set k 99999999999 0 1\r\nx\r\n", Expect::ClientRecoverable, "flags overflow u32"),
        (
            b"set k 0 0 18446744073709551617\r\n",
            Expect::ClientRecoverable,
            "bytes overflow u64",
        ),
        (b"set k 0 0 3 bogus\r\nabc\r\n", Expect::ClientRecoverable, "trailing garbage token"),
        (
            b"set k 0 0 3 noreply extra\r\nabc\r\n",
            Expect::ClientRecoverable,
            "token after noreply",
        ),
        (b"set k 0 0 3\r\nabcdefgh\r\n", Expect::ClientRecoverable, "data longer than declared"),
        (b"set k 0 0 5\r\nab\rxy*junk", Expect::ClientRecoverable, "unterminated data block"),
        (b"delete\r\n", Expect::ClientRecoverable, "delete without key"),
        (b"delete k bogus\r\n", Expect::ClientRecoverable, "bad delete flag"),
        (b"delete k noreply extra\r\n", Expect::ClientRecoverable, "extra delete token"),
        (huge_decl.as_bytes(), Expect::Close, "value above MAX_VALUE_SIZE"),
        (&unterminated, Expect::Close, "unterminated over-long line"),
    ];
    for (input, expect, what) in corpus {
        let Parsed::Err(e) = parse(input) else {
            panic!("{what}: expected an error, got {:?}", parse(input));
        };
        match expect {
            Expect::Unknown => {
                assert_eq!(e.kind, ErrorKind::UnknownCommand, "{what}");
                assert!(e.recover_by.is_some(), "{what}: ERROR must not close");
            }
            Expect::ClientRecoverable => {
                assert_eq!(e.kind, ErrorKind::Client, "{what}");
                let n = e.recover_by.unwrap_or_else(|| panic!("{what}: must resynchronize"));
                assert!(n > 0 && n <= input.len(), "{what}: recover_by {n}");
            }
            Expect::Close => {
                assert_eq!(e.kind, ErrorKind::Client, "{what}");
                assert_eq!(e.recover_by, None, "{what}: must close the connection");
            }
        }
        // The error line itself must encode without panicking.
        let mut out = Vec::new();
        e.encode(&mut out);
        assert!(out.ends_with(b"\r\n"), "{what}");
    }
}

/// Splitting any corpus entry at every byte boundary must still never
/// panic — errors may only surface once the offending line is complete.
#[test]
fn malformed_prefixes_never_panic() {
    let inputs: &[&[u8]] = &[
        b"set k 0 0 abc\r\nxxxxx\r\n",
        b"get k\x7fey\r\n",
        b"\xff\xfe\r\n",
        b"set k 0 0 5\r\nab\rxy*junk",
    ];
    for input in inputs {
        for cut in 0..=input.len() {
            let _ = parse(&input[..cut]);
        }
    }
}
