//! `cuckood` — a memcached-compatible network front-end for the
//! concurrent cuckoo+ tables in this workspace.
//!
//! The paper built its hash table as the storage engine of MemC3, a
//! drop-in memcached replacement; this crate closes the loop for the
//! reproduction by serving the table over TCP in the memcached ASCII
//! text protocol. Supported subset: `get`/`gets`, `set`, `add`,
//! `replace`, `delete`, `stats`, `version`, `quit`.
//!
//! Architecture (see `DESIGN.md` §"The network front-end"):
//!
//! - [`proto`] — incremental zero-copy frame parser + encoders;
//! - [`store`] — the [`cache::ClockCache`] (bounded, CLOCK-evicting)
//!   and [`cuckoo::CuckooMap`] (unbounded) backends behind one trait;
//! - [`conn`] — per-connection state machine over reused buffers;
//! - [`server`] — thread-per-core workers, each owning a shard of the
//!   connections; one shared concurrent store;
//! - [`signal`] — SIGINT/SIGTERM → graceful drain;
//! - [`stats`] — per-op latency histograms and counters for `stats`.
//!
//! ```no_run
//! let handle = server::spawn(server::Config {
//!     port: 0,                      // ephemeral
//!     ..Default::default()
//! }).unwrap();
//! println!("serving on {}", handle.local_addr());
//! handle.shutdown();                // graceful drain
//! ```

pub mod conn;
pub mod persist_store;
pub mod proto;
pub mod repl;
pub mod server;
pub mod signal;
pub mod stats;
pub mod store;

pub use server::{spawn, Config, ServerCtx, ServerHandle};

/// Reported by `version` and `stats`.
pub const VERSION: &str = concat!("cuckood-", env!("CARGO_PKG_VERSION"));

/// Entry point shared by the `cuckood` binary: parses CLI arguments,
/// installs signal handlers, serves until SIGINT/SIGTERM.
pub fn run_cli(args: impl Iterator<Item = String>) -> Result<(), String> {
    let config = parse_args(args)?;
    signal::install();
    let handle = spawn(config.clone()).map_err(|e| format!("bind failed: {e}"))?;
    eprintln!(
        "cuckood listening on {} ({} workers, {} mode, capacity {})",
        handle.local_addr(),
        handle.ctx().workers,
        if config.no_evict { "no-evict" } else { "clock" },
        config.capacity,
    );
    // Wait for a signal, then drain.
    while !signal::requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    eprintln!("cuckood: shutdown requested, draining connections...");
    handle.shutdown();
    eprintln!("cuckood: bye");
    Ok(())
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Config, String> {
    fn value_for(name: &str, args: &mut dyn Iterator<Item = String>) -> Result<String, String> {
        args.next().ok_or_else(|| format!("{name} requires a value"))
    }
    let mut config = Config::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-p" | "--port" => {
                config.port = value_for(&arg, &mut args)?
                    .parse()
                    .map_err(|_| "bad port".to_string())?;
            }
            "-l" | "--listen" => config.addr = value_for(&arg, &mut args)?,
            "-c" | "--capacity" => {
                config.capacity = value_for(&arg, &mut args)?
                    .parse()
                    .map_err(|_| "bad capacity".to_string())?;
            }
            "-t" | "--threads" => {
                config.workers = value_for(&arg, &mut args)?
                    .parse()
                    .map_err(|_| "bad thread count".to_string())?;
            }
            "--no-evict" => config.no_evict = true,
            "-d" | "--data-dir" => {
                config.data_dir = Some(value_for(&arg, &mut args)?.into());
            }
            "--fsync-interval-ms" => {
                config.fsync_interval_ms = value_for(&arg, &mut args)?
                    .parse()
                    .map_err(|_| "bad fsync interval".to_string())?;
            }
            "--snapshot-interval-secs" => {
                config.snapshot_interval_secs = value_for(&arg, &mut args)?
                    .parse()
                    .map_err(|_| "bad snapshot interval".to_string())?;
            }
            "--replica-of" => {
                config.replica_of = Some(value_for(&arg, &mut args)?);
            }
            "-h" | "--help" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    Ok(config)
}

const USAGE: &str = "\
cuckood — memcached-ASCII server over the concurrent cuckoo+ table

USAGE: cuckood [OPTIONS]

OPTIONS:
  -p, --port <PORT>       TCP port (default 11211; 0 = ephemeral)
  -l, --listen <ADDR>     bind address (default 127.0.0.1)
  -c, --capacity <N>      max resident items (default 1048576)
  -t, --threads <N>       worker threads (default: one per core)
      --no-evict          unbounded CuckooMap store instead of the
                          CLOCK cache (arbitrary value sizes)
  -d, --data-dir <DIR>    enable durability: append-only op log +
                          snapshots in DIR; warm restart replays them
      --fsync-interval-ms <MS>
                          group-commit window (default 5): max
                          acknowledged-but-lost ops on kill -9
      --snapshot-interval-secs <SECS>
                          log compaction cadence (default 60; 0 = only
                          at shutdown)
      --replica-of <HOST:PORT>
                          follow a primary read-only until `promote`
                          (requires --data-dir)
  -h, --help              this text";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let cfg = parse_args(
            ["--port", "0", "-c", "4096", "-t", "2", "--no-evict"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(cfg.port, 0);
        assert_eq!(cfg.capacity, 4096);
        assert_eq!(cfg.workers, 2);
        assert!(cfg.no_evict);
        assert!(parse_args(["--bogus"].iter().map(|s| s.to_string())).is_err());
        assert!(parse_args(["--port"].iter().map(|s| s.to_string())).is_err());
    }

    #[test]
    fn persistence_args_parse() {
        let cfg = parse_args(
            [
                "--data-dir",
                "/tmp/cuckood-data",
                "--fsync-interval-ms",
                "2",
                "--snapshot-interval-secs",
                "0",
                "--replica-of",
                "127.0.0.1:11222",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(cfg.data_dir.as_deref(), Some(std::path::Path::new("/tmp/cuckood-data")));
        assert_eq!(cfg.fsync_interval_ms, 2);
        assert_eq!(cfg.snapshot_interval_secs, 0);
        assert_eq!(cfg.replica_of.as_deref(), Some("127.0.0.1:11222"));
        let cfg = parse_args(std::iter::empty()).unwrap();
        assert!(cfg.data_dir.is_none());
        assert!(cfg.replica_of.is_none());
    }
}
