//! SIGINT/SIGTERM → graceful-shutdown flag, without a libc crate.
//!
//! The container has no `libc`/`signal-hook` crates, but std already
//! links the platform C library, so the two symbols we need (`signal`
//! and the handler ABI) are declared directly. The handler only stores
//! to an atomic — the one thing that is async-signal-safe — and the
//! server's event loops poll [`requested`].

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// `sighandler_t signal(int signum, sighandler_t handler);`
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        super::REQUESTED.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `on_signal` is async-signal-safe (single atomic store)
        // and stays alive for the program's duration (it's a fn item).
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the handlers; idempotent. Call once from the binary (tests
/// skip this and use [`crate::ServerHandle::shutdown`] instead).
pub fn install() {
    imp::install();
}

/// Whether a shutdown signal has arrived.
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// Test hook: simulate a received signal.
pub fn request_now() {
    REQUESTED.store(true, Ordering::SeqCst);
}
