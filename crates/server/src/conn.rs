//! Per-connection state machine: reused buffers, incremental parsing,
//! request execution, and write flushing over a nonblocking socket.
//!
//! Each connection owns a receive buffer and a response buffer that
//! persist across requests (allocation amortizes to zero on a busy
//! connection). A `pump` cycle reads whatever the socket has, parses and
//! executes every complete request in the buffer (responses accumulate
//! in the write buffer — pipelined clients get pipelined replies), then
//! flushes as much of the write buffer as the socket accepts.

// ORDERING-FILE: stats.counter — protocol-error tallies only.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use crate::proto::{self, Parsed, Request};
use crate::stats::OpClass;
use crate::store::{StoreCmd, StoreOutcome};
use crate::ServerCtx;

/// Read chunk size; also the growth step for the receive buffer.
const READ_CHUNK: usize = 16 * 1024;
/// Above this, an idle connection's buffers are shrunk back.
const BUFFER_KEEP: usize = 64 * 1024;

/// What `pump` tells the worker about the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PumpResult {
    /// Still open; `true` if any bytes moved or requests ran.
    Open { progress: bool },
    /// Closed (quit, EOF, fatal protocol error, or I/O error).
    Closed,
    /// The client sent `replicate <lsn>`: stop pumping and hand the
    /// socket to a replication feeder thread
    /// (see [`Conn::handoff_parts`]).
    Replicate { lsn: u64 },
}

pub struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// Bytes of `wbuf` already written to the socket.
    wpos: usize,
    /// Stop reading; flush what is queued, then close.
    closing: bool,
    /// Set when a `replicate` command asks for a feeder handoff.
    handoff: Option<u64>,
}

impl Conn {
    pub fn new(stream: TcpStream) -> Self {
        Conn { stream, rbuf: Vec::new(), wbuf: Vec::new(), wpos: 0, closing: false, handoff: None }
    }

    /// Duplicates the socket and takes the unflushed response bytes so a
    /// feeder thread can own the connection from here on (responses to
    /// requests pipelined ahead of `replicate` flush first, then the
    /// stream turns into a one-way record feed). The `Conn` itself
    /// should be dropped afterwards.
    pub fn handoff_parts(&mut self) -> std::io::Result<(TcpStream, Vec<u8>)> {
        let stream = self.stream.try_clone()?;
        let pending = self.wbuf[self.wpos..].to_vec();
        self.wbuf.clear();
        self.wpos = 0;
        Ok((stream, pending))
    }

    /// One service cycle. Never blocks.
    pub fn pump(&mut self, ctx: &ServerCtx) -> PumpResult {
        let mut progress = false;

        if !self.closing {
            match self.fill() {
                Ok(n) => progress |= n > 0,
                Err(FillEnd::Eof) => self.closing = true,
                Err(FillEnd::Fatal) => return PumpResult::Closed,
            }
            progress |= self.drain_requests(ctx);
            if let Some(lsn) = self.handoff.take() {
                return PumpResult::Replicate { lsn };
            }
        }

        match self.flush() {
            Ok(n) => progress |= n > 0,
            Err(()) => return PumpResult::Closed,
        }

        if self.closing && self.wpos == self.wbuf.len() {
            return PumpResult::Closed;
        }
        if !progress {
            self.maybe_shrink();
        }
        PumpResult::Open { progress }
    }

    /// Marks the connection for graceful shutdown: already-buffered
    /// requests still execute on the next pump, queued responses flush,
    /// then the socket closes.
    pub fn begin_drain(&mut self, ctx: &ServerCtx) {
        if !self.closing {
            // Serve what the client already sent before going away.
            self.drain_requests(ctx);
            self.closing = true;
        }
    }

    /// Reads until `WouldBlock`/EOF; returns bytes read.
    fn fill(&mut self) -> Result<usize, FillEnd> {
        let mut total = 0;
        loop {
            let old = self.rbuf.len();
            self.rbuf.resize(old + READ_CHUNK, 0);
            match self.stream.read(&mut self.rbuf[old..]) {
                Ok(0) => {
                    self.rbuf.truncate(old);
                    return if total > 0 { Ok(total) } else { Err(FillEnd::Eof) };
                }
                Ok(n) => {
                    self.rbuf.truncate(old + n);
                    total += n;
                    // Don't let one firehose connection starve the rest of
                    // the worker's shard.
                    if total >= 4 * READ_CHUNK {
                        return Ok(total);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    self.rbuf.truncate(old);
                    return Ok(total);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {
                    self.rbuf.truncate(old);
                }
                Err(_) => {
                    self.rbuf.truncate(old);
                    return Err(FillEnd::Fatal);
                }
            }
        }
    }

    /// Parses and executes every complete request in `rbuf`. Returns
    /// whether any request was handled.
    ///
    /// Storage bursts coalesce: when a parsed `set`/`add`/`replace` is
    /// followed by more complete storage commands already sitting in
    /// the buffer (a pipelining client), the whole run executes as one
    /// [`StoreCmd`] batch through [`crate::store::Store::store_many`],
    /// so the backend's pipelined write path amortizes its cache
    /// misses across the burst. Replies are encoded per command, in
    /// order, honoring each command's own `noreply` — the reply stream
    /// is byte-identical to the unbatched loop.
    fn drain_requests(&mut self, ctx: &ServerCtx) -> bool {
        let mut consumed = 0;
        let mut any = false;
        while !self.closing && self.handoff.is_none() {
            match proto::parse(&self.rbuf[consumed..]) {
                Parsed::Ok { request, consumed: used } => {
                    any = true;
                    consumed += used;
                    if let Request::Store { verb, key, flags, exptime, data, noreply } = &request {
                        // A replica refuses mutations per command via
                        // `execute`; only coalesce on a writable node.
                        if !ctx.is_read_only() {
                            let mut cmds = vec![StoreCmd {
                                verb: *verb,
                                key,
                                flags: *flags,
                                exptime: *exptime,
                                data,
                            }];
                            let mut replies = vec![!*noreply];
                            // Parse ahead: only complete storage
                            // commands extend the burst; anything else
                            // (including an incomplete tail) is left
                            // for the outer loop to handle.
                            while let Parsed::Ok {
                                request:
                                    Request::Store { verb, key, flags, exptime, data, noreply },
                                consumed: used,
                            } = proto::parse(&self.rbuf[consumed..])
                            {
                                cmds.push(StoreCmd { verb, key, flags, exptime, data });
                                replies.push(!noreply);
                                consumed += used;
                            }
                            execute_store_batch(&cmds, &replies, ctx, &mut self.wbuf);
                            continue;
                        }
                    }
                    match execute(&request, ctx, &mut self.wbuf) {
                        Action::Continue => {}
                        Action::Quit => self.closing = true,
                        Action::Replicate { lsn } => self.handoff = Some(lsn),
                    }
                }
                Parsed::Incomplete => break,
                Parsed::Err(e) => {
                    ctx.stats.protocol_errors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    e.encode(&mut self.wbuf);
                    match e.recover_by {
                        Some(skip) => consumed += skip,
                        None => self.closing = true,
                    }
                    any = true;
                }
            }
        }
        if consumed > 0 {
            self.rbuf.drain(..consumed);
        }
        any
    }

    /// Writes as much queued response data as the socket accepts.
    fn flush(&mut self) -> Result<usize, ()> {
        let mut total = 0;
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(()),
                Ok(n) => {
                    self.wpos += n;
                    total += n;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        if self.wpos == self.wbuf.len() && self.wpos > 0 {
            self.wbuf.clear();
            self.wpos = 0;
        }
        Ok(total)
    }

    /// Returns oversized buffers to a sane footprint once idle.
    fn maybe_shrink(&mut self) {
        if self.rbuf.capacity() > BUFFER_KEEP && self.rbuf.len() < BUFFER_KEEP / 2 {
            self.rbuf.shrink_to(BUFFER_KEEP);
        }
        if self.wbuf.capacity() > BUFFER_KEEP && self.wbuf.len() - self.wpos < BUFFER_KEEP / 2 {
            let pending: Vec<u8> = self.wbuf[self.wpos..].to_vec();
            self.wbuf = pending;
            self.wpos = 0;
        }
    }
}

enum FillEnd {
    Eof,
    Fatal,
}

/// What [`execute`] asks the connection to do next.
enum Action {
    Continue,
    /// `quit`: flush and close.
    Quit,
    /// `replicate <lsn>`: hand the socket to a feeder thread.
    Replicate { lsn: u64 },
}

/// Executes one request, appending the response to `out`.
fn execute(req: &Request<'_>, ctx: &ServerCtx, out: &mut Vec<u8>) -> Action {
    // A replica refuses client mutations until promoted; replicated ops
    // arrive through the applier, not this path. (With `noreply` the
    // refusal is silent — the reply stream must stay in sync.)
    if ctx.is_read_only() {
        let refused = match req {
            Request::Store { noreply, .. }
            | Request::Delete { noreply, .. }
            | Request::FlushAll { noreply, .. } => Some(*noreply),
            _ => None,
        };
        if let Some(noreply) = refused {
            if !noreply {
                proto::encode_line(out, "SERVER_ERROR replica is read-only");
            }
            return Action::Continue;
        }
    }
    let t0 = Instant::now();
    let class = match req {
        Request::Get { keys, with_cas } => {
            let now = crate::store::now_secs();
            if keys.len() > 1 {
                // One batched store call for the whole request: the
                // backend pipelines the per-key cache misses. Misses
                // simply emit no VALUE stanza, exactly as the
                // single-key loop below.
                ctx.stats.record_multiget(keys.len());
                let mut items = Vec::with_capacity(keys.len());
                ctx.store.get_many(keys, now, &mut items);
                for (key, item) in keys.iter().zip(items) {
                    if let Some(item) = item {
                        proto::encode_value(
                            out,
                            key,
                            item.flags,
                            &item.data,
                            with_cas.then_some(item.cas),
                        );
                    }
                }
            } else {
                for key in keys {
                    if let Some(item) = ctx.store.get(key, now) {
                        proto::encode_value(out, key, item.flags, &item.data, with_cas.then_some(item.cas));
                    }
                }
            }
            proto::encode_end(out);
            OpClass::Get
        }
        Request::Store { verb, key, flags, exptime, data, noreply } => {
            // Shares the burst executor (which records its own latency
            // samples) so single and coalesced stores stay one path.
            execute_store_batch(
                &[StoreCmd { verb: *verb, key, flags: *flags, exptime: *exptime, data }],
                &[!*noreply],
                ctx,
                out,
            );
            return Action::Continue;
        }
        Request::Delete { key, noreply } => {
            let deleted = ctx.store.delete(key);
            if !noreply {
                proto::encode_line(out, if deleted { "DELETED" } else { "NOT_FOUND" });
            }
            OpClass::Delete
        }
        Request::Stats { arg } => {
            match arg {
                proto::StatsArg::General => {
                    ctx.stats.encode(out, ctx.store.as_ref(), ctx.workers);
                    proto::encode_end(out);
                }
                proto::StatsArg::Cuckoo => {
                    let mut samples = Vec::new();
                    crate::stats::collect_metric_samples(ctx.store.as_ref(), &mut samples);
                    metrics::render_stat_lines(&samples, out);
                    proto::encode_end(out);
                }
                proto::StatsArg::Prometheus => {
                    // Prometheus text exposition, still END-terminated so
                    // ASCII-protocol clients know where the body stops
                    // (scrapers strip the last line: `... | sed '$d'`).
                    let mut samples = Vec::new();
                    crate::stats::collect_metric_samples(ctx.store.as_ref(), &mut samples);
                    metrics::render_prometheus(&samples, out);
                    proto::encode_end(out);
                }
                proto::StatsArg::Reset => {
                    ctx.stats.reset();
                    ctx.store.metrics_reset();
                    htm::stats::reset_global();
                    proto::encode_line(out, "RESET");
                }
            }
            OpClass::Other
        }
        Request::FlushAll { delay, noreply } => {
            if *delay != 0 {
                // A delayed flush is a timer, not an op — it cannot be
                // replayed deterministically from the log, so it is
                // refused rather than approximated.
                if !noreply {
                    proto::encode_line(out, "SERVER_ERROR delayed flush_all is not supported");
                }
            } else {
                ctx.store.flush_all();
                if !noreply {
                    proto::encode_line(out, "OK");
                }
            }
            OpClass::Other
        }
        Request::Replicate { lsn } => {
            if ctx.persist.is_none() {
                proto::encode_line(out, "SERVER_ERROR replication requires --data-dir");
                OpClass::Other
            } else {
                // The feeder thread writes the handshake reply; nothing
                // is encoded here.
                return Action::Replicate { lsn: *lsn };
            }
        }
        Request::Promote => {
            proto::encode_line(
                out,
                if ctx.promote() { "OK" } else { "SERVER_ERROR not a replica" },
            );
            OpClass::Other
        }
        Request::Version => {
            proto::encode_line(out, &format!("VERSION {}", crate::VERSION));
            OpClass::Other
        }
        Request::Quit => return Action::Quit,
    };
    ctx.stats.record(class, t0.elapsed().as_nanos() as u64);
    Action::Continue
}

/// Executes a coalesced burst of storage commands as one batched
/// [`crate::store::Store::store_many`] call, encoding per-command
/// replies in order. `replies[i]` is `!noreply` for command `i`.
fn execute_store_batch(
    cmds: &[StoreCmd<'_>],
    replies: &[bool],
    ctx: &ServerCtx,
    out: &mut Vec<u8>,
) {
    let t0 = Instant::now();
    let now = crate::store::now_secs();
    if cmds.len() > 1 {
        ctx.stats.record_multiset(cmds.len());
    }
    let mut outcomes = Vec::with_capacity(cmds.len());
    ctx.store.store_many(cmds, now, &mut outcomes);
    for (outcome, &reply) in outcomes.iter().zip(replies) {
        if *outcome == StoreOutcome::TooLarge {
            ctx.stats.too_large.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        if reply {
            proto::encode_line(
                out,
                match outcome {
                    StoreOutcome::Stored { .. } => "STORED",
                    StoreOutcome::NotStored => "NOT_STORED",
                    StoreOutcome::TooLarge => "SERVER_ERROR object too large for cache",
                },
            );
        }
    }
    // One histogram sample per command, amortized across the burst, so
    // `cmd_set` still counts individual commands and the mean reflects
    // per-command service time.
    let per_cmd = t0.elapsed().as_nanos() as u64 / cmds.len() as u64;
    for _ in 0..cmds.len() {
        ctx.stats.record(OpClass::Store, per_cmd);
    }
}
