//! Asynchronous primary→replica streaming over the memcached port.
//!
//! The wire protocol piggybacks on the ASCII command layer: a replica
//! connects like any client and sends `replicate <lsn>` (its highest
//! applied primary LSN, `0` for a fresh directory). The primary answers
//! one text line:
//!
//! ```text
//! OK full <S>\r\n    — table bootstrap follows, then the log above S
//! OK incr <C>\r\n    — the log above C follows (replica was current
//!                      enough that the live oplog still covers it)
//! ```
//!
//! after which the connection stops being request/response and becomes a
//! one-way stream of [`persist::record`] frames — the exact on-disk
//! format, CRCs and all, so the replica's decoder and its crash recovery
//! share one codec. Idle feeds carry `Heartbeat` frames (wire-only, tag
//! never written to a log file) so the replica can compute lag.
//!
//! **Bootstrap correctness.** The feeder reads `S = last_lsn`, scans the
//! live table (non-blocking, retried until displacement-free), and
//! streams the scan as `Set` records at LSN `S`. Because the store
//! applies to the map *before* appending to the log under the key's
//! write stripe, every op with LSN ≤ S is already reflected in (or
//! superseded within) that scan, and every op the scan raced with has
//! LSN > S and follows in the log stream — last-writer-wins replay
//! converges to the primary's table. The live `oplog` is pinned via
//! [`persist::Persister::pause_compaction`] only across the
//! read-S/open-file window, so compaction is never stalled by a slow
//! replica.
//!
//! **Lag and loss.** A feeder that falls so far behind that compaction
//! deletes log records it still needs (detected as an LSN gap after a
//! rotation) drops the connection; the replica reconnects and takes a
//! fresh bootstrap. Replication is asynchronous: an acknowledged write
//! can be lost on primary failure before it was streamed — the replica
//! converges to a *prefix* of the primary's history, never to an
//! invented state.

use std::io::{self, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use persist::record::{self, Decoded, Op};

use crate::persist_store::PersistentStore;
use crate::store::{now_secs, Store};
use crate::ServerCtx;

/// Idle-feed keep-alive cadence.
const HEARTBEAT_EVERY: Duration = Duration::from_millis(200);
/// Feeder poll while the log has nothing new; applier read timeout (both
/// bound how fast shutdown/promote are noticed).
const IDLE_POLL: Duration = Duration::from_millis(1);
const APPLIER_READ_TIMEOUT: Duration = Duration::from_millis(200);
/// Reconnect backoff after a lost primary.
const RECONNECT_DELAY: Duration = Duration::from_millis(200);

// ---------------------------------------------------------------------------
// Primary side: the feeder
// ---------------------------------------------------------------------------

/// Takes over a socket whose client sent `replicate <lsn>`; spawned by
/// the worker loop. `pending` is the tail of unflushed responses to
/// requests pipelined ahead of the handshake.
pub fn spawn_feeder(stream: TcpStream, pending: Vec<u8>, lsn: u64, ctx: Arc<ServerCtx>) {
    let _ = std::thread::Builder::new()
        .name("cuckood-feeder".into())
        .spawn(move || {
            let Some(store) = ctx.persist.clone() else {
                return; // execute() refuses `replicate` without a persister
            };
            // ORDERING: handoff.acqrel-rmw
            let n = ctx.feeders.fetch_add(1, Ordering::AcqRel) + 1;
            store.persister().metrics().replicas_connected.set(n);
            let r = feed(stream, pending, lsn, &store, &ctx);
            // ORDERING: handoff.acqrel-rmw
            let n = ctx.feeders.fetch_sub(1, Ordering::AcqRel) - 1;
            store.persister().metrics().replicas_connected.set(n);
            if let Err(e) = r {
                if e.kind() != ErrorKind::BrokenPipe && e.kind() != ErrorKind::ConnectionReset {
                    eprintln!("cuckood: replication feed ended: {e}");
                }
            }
        });
}

fn feed(
    mut stream: TcpStream,
    pending: Vec<u8>,
    req_lsn: u64,
    store: &PersistentStore,
    ctx: &ServerCtx,
) -> io::Result<()> {
    let p = store.persister();
    let m = Arc::clone(p.metrics());
    stream.set_nonblocking(false)?;
    stream.write_all(&pending)?;

    // Pin the live oplog while deciding what to stream, so it cannot be
    // rotated away between reading the watermarks and opening the file.
    let pause = p.pause_compaction();
    let rotate_lsn = p.rotate_lsn();
    let last = p.last_lsn();
    // Incremental iff the live log still contains everything after the
    // replica's cursor.
    let incremental = req_lsn >= rotate_lsn && req_lsn <= last;
    let mut cursor = if incremental { req_lsn } else { last };
    let file = std::fs::File::open(p.oplog_path());
    let mut rotations_seen = p.rotations();
    drop(pause);

    let mut out = Vec::new();
    if incremental {
        out.extend_from_slice(format!("OK incr {cursor}\r\n").as_bytes());
        stream.write_all(&out)?;
    } else {
        out.extend_from_slice(format!("OK full {cursor}\r\n").as_bytes());
        // Table bootstrap at LSN `cursor`: a consistent-scan image of
        // every live entry.
        let mut entries = Vec::new();
        loop {
            entries.clear();
            if store.scan_entries(now_secs(), &mut entries) {
                break;
            }
            std::thread::yield_now();
        }
        for e in &entries {
            record::encode_op(
                &Op::Set {
                    key: e.key.clone(),
                    flags: e.flags,
                    expires_at: e.expires_at,
                    cas: e.cas,
                    value: e.value.clone(),
                },
                cursor,
                &mut out,
            );
        }
        m.replication_records_sent.add(entries.len() as u64);
        stream.write_all(&out)?;
    }

    // Tail the log file, forwarding frames above the cursor.
    let mut file = match file {
        Ok(f) => f,
        // No oplog yet (fresh directory): open lazily below.
        Err(e) if e.kind() == ErrorKind::NotFound => {
            std::fs::File::open(p.oplog_path()).or_else(|_| {
                std::fs::OpenOptions::new().create(true).append(true).open(p.oplog_path())
            })?
        }
        Err(e) => return Err(e),
    };
    let mut carry: Vec<u8> = Vec::new();
    let mut chunk = vec![0u8; 64 * 1024];
    let mut last_write = Instant::now();
    let mut first_after_reopen = false;

    loop {
        if ctx.draining() {
            return Ok(());
        }
        let n = file.read(&mut chunk)?;
        if n > 0 {
            carry.extend_from_slice(&chunk[..n]);
            out.clear();
            let mut pos = 0;
            let mut sent = 0u64;
            while pos < carry.len() {
                match record::decode(&carry[pos..]) {
                    Decoded::Frame { record, consumed } => {
                        if first_after_reopen {
                            first_after_reopen = false;
                            if record.lsn > cursor + 1 {
                                // Compaction deleted records this feed
                                // still needed; force a re-bootstrap.
                                return Err(io::Error::new(
                                    ErrorKind::UnexpectedEof,
                                    format!(
                                        "lag gap: log resumes at {} but replica is at {}",
                                        record.lsn, cursor
                                    ),
                                ));
                            }
                        }
                        if record.lsn > cursor {
                            out.extend_from_slice(&carry[pos..pos + consumed]);
                            cursor = record.lsn;
                            sent += 1;
                        }
                        pos += consumed;
                    }
                    // A frame the writer is mid-write on; keep the tail.
                    Decoded::Incomplete | Decoded::Corrupt => break,
                }
            }
            carry.drain(..pos);
            if !out.is_empty() {
                stream.write_all(&out)?;
                last_write = Instant::now();
                m.replication_records_sent.add(sent);
            }
            m.replication_lag.set(p.last_lsn().saturating_sub(cursor));
            continue;
        }

        // EOF. Did the file rotate out from under the read position?
        if p.rotations() != rotations_seen {
            if !carry.is_empty() {
                return Err(io::Error::new(
                    ErrorKind::InvalidData,
                    "rotated log ended in a partial frame",
                ));
            }
            rotations_seen = p.rotations();
            file = std::fs::File::open(p.oplog_path())?;
            first_after_reopen = true;
            continue;
        }
        if last_write.elapsed() >= HEARTBEAT_EVERY {
            out.clear();
            record::encode_op(&Op::Heartbeat { last_lsn: p.last_lsn() }, 0, &mut out);
            stream.write_all(&out)?;
            last_write = Instant::now();
            m.replication_lag.set(p.last_lsn().saturating_sub(cursor));
        }
        std::thread::sleep(IDLE_POLL);
    }
}

// ---------------------------------------------------------------------------
// Replica side: the applier
// ---------------------------------------------------------------------------

/// Spawns the replica's applier thread: connect to the primary, apply
/// the stream, reconnect (with a fresh bootstrap if needed) until
/// shutdown or `promote`.
pub fn spawn_applier(primary: String, ctx: Arc<ServerCtx>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("cuckood-applier".into())
        .spawn(move || applier_loop(&primary, &ctx))
        .expect("spawn replication applier")
}

fn applier_loop(primary: &str, ctx: &ServerCtx) {
    let Some(store) = ctx.persist.clone() else {
        return; // spawn() rejects --replica-of without --data-dir
    };
    // Highest primary LSN applied this process lifetime. Deliberately
    // not persisted: local LSNs differ from the primary's, so a replica
    // restart takes a full bootstrap rather than guessing.
    let mut applied = 0u64;
    while !ctx.draining() && !ctx.is_promoted() {
        match TcpStream::connect(primary) {
            Ok(stream) => {
                if let Err(e) = apply_stream(stream, &mut applied, &store, ctx) {
                    if !ctx.draining() && !ctx.is_promoted() {
                        eprintln!("cuckood: replication stream lost: {e}");
                    }
                }
            }
            Err(e) => {
                eprintln!("cuckood: cannot reach primary {primary}: {e}");
            }
        }
        // Promote/shutdown must not wait out the backoff.
        let waited = Instant::now();
        while waited.elapsed() < RECONNECT_DELAY && !ctx.draining() && !ctx.is_promoted() {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

fn apply_stream(
    mut stream: TcpStream,
    applied: &mut u64,
    store: &PersistentStore,
    ctx: &ServerCtx,
) -> io::Result<()> {
    let m = Arc::clone(store.persister().metrics());
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(APPLIER_READ_TIMEOUT))?;
    stream.write_all(format!("replicate {applied}\r\n").as_bytes())?;

    let line = read_line(&mut stream, ctx)?;
    match parse_handshake(&line) {
        Some((true, _start)) => {
            // The bootstrap replaces the whole table: flush locally
            // (logged, so the replica's own recovery agrees) and rebuild
            // from the stream.
            store.apply_replicated(&Op::FlushAll);
            *applied = 0;
        }
        Some((false, _start)) => {}
        None => {
            return Err(io::Error::new(
                ErrorKind::InvalidData,
                format!("bad replication handshake: {}", String::from_utf8_lossy(&line)),
            ))
        }
    }

    let mut carry: Vec<u8> = Vec::new();
    let mut chunk = vec![0u8; 64 * 1024];
    loop {
        if ctx.draining() || ctx.is_promoted() {
            return Ok(());
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => return Err(ErrorKind::UnexpectedEof.into()),
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        carry.extend_from_slice(&chunk[..n]);
        let mut pos = 0;
        while pos < carry.len() {
            match record::decode(&carry[pos..]) {
                Decoded::Frame { record, consumed } => {
                    pos += consumed;
                    match &record.op {
                        Op::Heartbeat { last_lsn } => {
                            m.replication_lag.set(last_lsn.saturating_sub(*applied));
                        }
                        op => {
                            // Re-check per frame: once promoted, even
                            // records already in flight must not land.
                            if ctx.draining() || ctx.is_promoted() {
                                return Ok(());
                            }
                            store.apply_replicated(op);
                            *applied = (*applied).max(record.lsn);
                            m.replication_records_applied.inc();
                        }
                    }
                }
                Decoded::Incomplete => break,
                Decoded::Corrupt => {
                    return Err(io::Error::new(
                        ErrorKind::InvalidData,
                        "corrupt frame on replication stream",
                    ))
                }
            }
        }
        carry.drain(..pos);
    }
}

/// Reads one `\n`-terminated handshake line (byte-at-a-time: it is a
/// dozen bytes, once per connection).
fn read_line(stream: &mut TcpStream, ctx: &ServerCtx) -> io::Result<Vec<u8>> {
    let mut line = Vec::new();
    let mut b = [0u8; 1];
    loop {
        if ctx.draining() || ctx.is_promoted() {
            return Err(ErrorKind::Interrupted.into());
        }
        match stream.read(&mut b) {
            Ok(0) => return Err(ErrorKind::UnexpectedEof.into()),
            Ok(_) => {
                if b[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return Ok(line);
                }
                if line.len() > 128 {
                    return Err(io::Error::new(ErrorKind::InvalidData, "handshake too long"));
                }
                line.push(b[0]);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Parses `OK full <lsn>` / `OK incr <lsn>` → `(is_full, lsn)`.
fn parse_handshake(line: &[u8]) -> Option<(bool, u64)> {
    let s = std::str::from_utf8(line).ok()?;
    let mut it = s.split_ascii_whitespace();
    if it.next()? != "OK" {
        return None;
    }
    let full = match it.next()? {
        "full" => true,
        "incr" => false,
        _ => return None,
    };
    let lsn: u64 = it.next()?.parse().ok()?;
    if it.next().is_some() {
        return None;
    }
    Some((full, lsn))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_parses() {
        assert_eq!(parse_handshake(b"OK full 17"), Some((true, 17)));
        assert_eq!(parse_handshake(b"OK incr 0"), Some((false, 0)));
        assert_eq!(parse_handshake(b"OK sideways 3"), None);
        assert_eq!(parse_handshake(b"ERROR"), None);
        assert_eq!(parse_handshake(b"OK full x"), None);
        assert_eq!(parse_handshake(b"OK full 1 2"), None);
    }
}
