//! Storage engines behind the wire protocol.
//!
//! Two interchangeable backends implement [`Store`]:
//!
//! - [`ClockStore`] (the default) fronts [`cache::ClockCache`] — the
//!   MemC3-style bounded cache. Byte-string keys are mapped onto the
//!   table's `u64` key space with the workspace's SipHash-1-3 (seeded per
//!   process), and the full key + value + metadata are packed into a
//!   fixed [`InlineEntry`] so the table's optimistic read path serves
//!   whole items with zero locking. This mirrors the paper's §6 MemC3
//!   evaluation, which uses small fixed-size items; items that do not
//!   fit the inline budget are refused with `SERVER_ERROR object too
//!   large for cache`.
//! - [`CuckooStore`] (`--no-evict`) fronts [`cuckoo::CuckooMap`] — the
//!   general auto-resizing table. Arbitrary item sizes, no eviction:
//!   the working set is bounded only by memory, as when `cuckood` is
//!   used as a plain key-value store rather than a cache.
//!
//! Expiry (`exptime`) follows memcached: `0` never expires, values up to
//! thirty days are relative seconds, larger values are absolute unix
//! time. Expiry is lazy — detected on access, counted via
//! [`cache::CacheStats::expirations`].

// ORDERING-FILE: stats.counter — hit/miss/eviction tallies and the monotonic CAS-id allocator.

use cache::{CacheStats, ClockCache};
use cuckoo::hash::SipHashBuilder;
use cuckoo::CuckooMap;
use htm::Plain;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::proto::StoreVerb;

/// `exptime` values above this are absolute unix timestamps.
const THIRTY_DAYS: u32 = 60 * 60 * 24 * 30;

/// Current unix time in seconds, saturated into `u32` (valid until 2106).
pub fn now_secs() -> u32 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs().min(u32::MAX as u64) as u32)
        .unwrap_or(0)
}

/// Resolves a wire `exptime` into an absolute deadline (`0` = never).
fn deadline(exptime: u32, now: u32) -> u32 {
    match exptime {
        0 => 0,
        t if t <= THIRTY_DAYS => now.saturating_add(t),
        t => t,
    }
}

fn expired(deadline: u32, now: u32) -> bool {
    deadline != 0 && now >= deadline
}

/// Result of a storage command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOutcome {
    /// `STORED`. Carries the durable metadata the engine assigned —
    /// the persistence layer logs exactly these values so replay and
    /// replication reproduce the same cas and absolute deadline without
    /// re-reading the table.
    Stored { cas: u64, expires_at: u32 },
    /// `NOT_STORED` — `add` hit a present key / `replace` an absent one.
    NotStored,
    /// `SERVER_ERROR object too large for cache`
    TooLarge,
}

/// An owned item copy handed to the connection for response encoding.
pub struct ItemOut {
    pub flags: u32,
    pub cas: u64,
    pub data: Vec<u8>,
}

/// One storage command of a coalesced burst (see
/// [`Store::store_many`]): the arguments of [`Store::store`] minus the
/// shared `now`, borrowed straight from the connection's receive
/// buffer. `noreply` stays with the connection — it shapes the reply
/// stream, not the engine.
#[derive(Debug, Clone, Copy)]
pub struct StoreCmd<'a> {
    pub verb: StoreVerb,
    pub key: &'a [u8],
    pub flags: u32,
    pub exptime: u32,
    pub data: &'a [u8],
}

/// Counters surfaced by the `stats` command, uniform across backends.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStats {
    pub cache: CacheStats,
    pub len: usize,
    pub capacity: usize,
    /// ClockStore only: gets whose 64-bit key hash collided with a
    /// different resident key (answered as a miss).
    pub hash_collisions: u64,
}

/// The protocol-facing storage interface. `now` is passed in (rather
/// than read internally) so tests can drive time.
pub trait Store: Send + Sync + 'static {
    fn get(&self, key: &[u8], now: u32) -> Option<ItemOut>;
    /// Batched lookup: one result per key, in order (`None` = miss),
    /// with per-key semantics identical to [`get`](Self::get). The
    /// default loops `get`; backends whose table has a pipelined
    /// multi-key read path override it to amortize cache misses across
    /// the batch.
    fn get_many(&self, keys: &[&[u8]], now: u32, out: &mut Vec<Option<ItemOut>>) {
        out.clear();
        out.extend(keys.iter().map(|k| self.get(k, now)));
    }
    fn store(
        &self,
        verb: StoreVerb,
        key: &[u8],
        flags: u32,
        exptime: u32,
        data: &[u8],
        now: u32,
    ) -> StoreOutcome;
    /// Batched mutation: one outcome per command, in order, with
    /// per-command semantics identical to [`store`](Self::store) —
    /// including cas allocation order and duplicate keys within the
    /// batch (later commands observe earlier ones). The default loops
    /// `store`; backends whose table has a pipelined multi-key write
    /// path override it to run `set` bursts through the batch engine.
    fn store_many(&self, cmds: &[StoreCmd<'_>], now: u32, out: &mut Vec<StoreOutcome>) {
        out.clear();
        out.extend(
            cmds.iter().map(|c| self.store(c.verb, c.key, c.flags, c.exptime, c.data, now)),
        );
    }
    fn delete(&self, key: &[u8]) -> bool;
    /// `flush_all`: drops every item, returning how many went. Not
    /// atomic against concurrent writers (memcached's isn't either);
    /// the persistent wrapper serializes it against all writes.
    fn flush_all(&self) -> u64;
    /// Reinstates one recovered item verbatim — given cas, given
    /// absolute deadline — and keeps the engine's cas allocator above
    /// it. Only called before the server accepts connections (warm
    /// restart) or from the replication applier.
    fn restore(&self, key: &[u8], flags: u32, expires_at: u32, cas: u64, value: &[u8]);
    /// One non-blocking pass over the table, pushing every live entry.
    /// Returns `false` if a concurrent cuckoo displacement may have
    /// hidden an entry from the pass — the caller must discard and
    /// retry. Entries already expired at `now` are skipped.
    fn scan_entries(&self, now: u32, out: &mut Vec<persist::Entry>) -> bool;
    /// Graceful-drain hook: flush and fsync any durability tier. The
    /// default (no persistence) is a no-op.
    fn persist_shutdown(&self) -> std::io::Result<()> {
        Ok(())
    }
    fn stats(&self) -> StoreStats;
    /// Human label for the `stats` output.
    fn engine(&self) -> &'static str;
    /// Appends the backend's cuckoo observability samples (`stats
    /// cuckoo` / `stats prometheus`). Default: no samples, so trivial
    /// backends need not care.
    fn metrics(&self, out: &mut Vec<metrics::Sample>) {
        let _ = out;
    }
    /// Zeroes the backend's resettable metric families (`stats reset`).
    fn metrics_reset(&self) {}
}

// ---------------------------------------------------------------------------
// ClockStore: bounded cache, inline fixed-size items
// ---------------------------------------------------------------------------

/// Inline item budget: key + value together. With the 24-byte header the
/// whole entry is 256 bytes — four cache lines per optimistic copy-out.
pub const INLINE_DATA: usize = 232;

/// A complete item (key, value, metadata) packed into a POD block so it
/// can live *inside* the cuckoo table and be read via the paper's
/// lock-free optimistic path.
#[derive(Clone, Copy)]
#[repr(C)]
pub struct InlineEntry {
    klen: u16,
    vlen: u16,
    flags: u32,
    expires_at: u32,
    _pad: u32,
    cas: u64,
    bytes: [u8; INLINE_DATA],
}

// SAFETY: all fields are integers or byte arrays; every bit pattern is a
// valid value. Lengths are re-clamped on every read, so even a torn
// (pre-validation) copy cannot index out of bounds.
unsafe impl Plain for InlineEntry {}

impl InlineEntry {
    fn new(key: &[u8], flags: u32, expires_at: u32, cas: u64, data: &[u8]) -> Option<Self> {
        if key.len() + data.len() > INLINE_DATA {
            return None;
        }
        let mut bytes = [0u8; INLINE_DATA];
        bytes[..key.len()].copy_from_slice(key);
        bytes[key.len()..key.len() + data.len()].copy_from_slice(data);
        Some(InlineEntry {
            klen: key.len() as u16,
            vlen: data.len() as u16,
            flags,
            expires_at,
            _pad: 0,
            cas,
            bytes,
        })
    }

    fn key(&self) -> &[u8] {
        let k = (self.klen as usize).min(INLINE_DATA);
        &self.bytes[..k]
    }

    fn value(&self) -> &[u8] {
        let k = (self.klen as usize).min(INLINE_DATA);
        let v = (self.vlen as usize).min(INLINE_DATA - k);
        &self.bytes[k..k + v]
    }
}

/// Bounded CLOCK-evicting store over `cache::ClockCache`.
pub struct ClockStore {
    cache: ClockCache<InlineEntry>,
    hasher: SipHashBuilder,
    cas: AtomicU64,
    collisions: AtomicU64,
}

impl ClockStore {
    /// `capacity` is the maximum resident item count.
    pub fn new(capacity: usize) -> Self {
        ClockStore {
            cache: ClockCache::new(capacity),
            hasher: SipHashBuilder::new(),
            cas: AtomicU64::new(1),
            collisions: AtomicU64::new(0),
        }
    }

    fn hash_key(&self, key: &[u8]) -> u64 {
        let mut h = self.hasher.build_hasher();
        h.write(key);
        h.finish()
    }

    fn next_cas(&self) -> u64 {
        self.cas.fetch_add(1, Ordering::Relaxed)
    }
}

impl Store for ClockStore {
    fn get(&self, key: &[u8], now: u32) -> Option<ItemOut> {
        let h = self.hash_key(key);
        let e = self.cache.get(h)?;
        if e.key() != key {
            // 64-bit hash collision between distinct resident keys:
            // indistinguishable from a miss at the protocol level.
            self.collisions.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        if expired(e.expires_at, now) {
            self.cache.delete(h);
            self.cache.record_expiration();
            return None;
        }
        Some(ItemOut { flags: e.flags, cas: e.cas, data: e.value().to_vec() })
    }

    fn get_many(&self, keys: &[&[u8]], now: u32, out: &mut Vec<Option<ItemOut>>) {
        let hashes: Vec<u64> = keys.iter().map(|k| self.hash_key(k)).collect();
        let mut entries = Vec::with_capacity(keys.len());
        self.cache.get_many(&hashes, &mut entries);
        out.clear();
        out.reserve(keys.len());
        for ((key, h), entry) in keys.iter().zip(&hashes).zip(entries) {
            let item = entry.and_then(|e| {
                if e.key() != *key {
                    self.collisions.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                if expired(e.expires_at, now) {
                    self.cache.delete(*h);
                    self.cache.record_expiration();
                    return None;
                }
                Some(ItemOut { flags: e.flags, cas: e.cas, data: e.value().to_vec() })
            });
            out.push(item);
        }
    }

    fn store(
        &self,
        verb: StoreVerb,
        key: &[u8],
        flags: u32,
        exptime: u32,
        data: &[u8],
        now: u32,
    ) -> StoreOutcome {
        let h = self.hash_key(key);
        let expires_at = deadline(exptime, now);
        let cas = self.next_cas();
        let Some(entry) = InlineEntry::new(key, flags, expires_at, cas, data) else {
            return StoreOutcome::TooLarge;
        };
        // Lazily reap an expired incumbent so add/replace see it as
        // absent, as memcached semantics require.
        if let Some(old) = self.cache.get(h) {
            if old.key() == key && expired(old.expires_at, now) {
                self.cache.delete(h);
                self.cache.record_expiration();
            }
        }
        let stored = match verb {
            StoreVerb::Set => {
                self.cache.put(h, entry);
                true
            }
            StoreVerb::Add => self.cache.put_if_absent(h, entry),
            StoreVerb::Replace => self.cache.replace(h, entry),
        };
        if stored {
            StoreOutcome::Stored { cas, expires_at }
        } else {
            StoreOutcome::NotStored
        }
    }

    fn store_many(&self, cmds: &[StoreCmd<'_>], now: u32, out: &mut Vec<StoreOutcome>) {
        out.clear();
        out.reserve(cmds.len());
        let mut i = 0;
        while i < cmds.len() {
            let run = cmds[i..].iter().take_while(|c| c.verb == StoreVerb::Set).count();
            if run < 2 {
                // Conditional verbs (and lone sets) keep the
                // per-command path: add/replace semantics hinge on the
                // present/absent check the engine does per key.
                let c = &cmds[i];
                out.push(self.store(c.verb, c.key, c.flags, c.exptime, c.data, now));
                i += 1;
                continue;
            }
            // A `set` run: per-command metadata (hash, cas allocation,
            // inline packing, lazy reap of an expired incumbent) in
            // command order, then one batched put through the table's
            // pipelined write path. Oversized items report `TooLarge`
            // and drop out of the batch, exactly as `store` refuses
            // them.
            let mut pairs = Vec::with_capacity(run);
            for c in &cmds[i..i + run] {
                let h = self.hash_key(c.key);
                let expires_at = deadline(c.exptime, now);
                let cas = self.next_cas();
                let Some(entry) = InlineEntry::new(c.key, c.flags, expires_at, cas, c.data)
                else {
                    out.push(StoreOutcome::TooLarge);
                    continue;
                };
                if let Some(old) = self.cache.get(h) {
                    if old.key() == c.key && expired(old.expires_at, now) {
                        self.cache.delete(h);
                        self.cache.record_expiration();
                    }
                }
                pairs.push((h, entry));
                out.push(StoreOutcome::Stored { cas, expires_at });
            }
            self.cache.put_many(&pairs);
            i += run;
        }
    }

    fn delete(&self, key: &[u8]) -> bool {
        let h = self.hash_key(key);
        // Only delete what the client named: verify the resident key.
        match self.cache.get(h) {
            Some(e) if e.key() == key => self.cache.delete(h).is_some(),
            _ => false,
        }
    }

    fn flush_all(&self) -> u64 {
        self.cache.flush()
    }

    fn restore(&self, key: &[u8], flags: u32, expires_at: u32, cas: u64, value: &[u8]) {
        // An item that fit when logged can only fail here if it came
        // from a foreign engine (replication across --no-evict and the
        // bounded cache); dropping it matches the cache's contract.
        let Some(entry) = InlineEntry::new(key, flags, expires_at, cas, value) else {
            return;
        };
        self.cache.put(self.hash_key(key), entry);
        // Future allocations must stay above every restored cas.
        self.cas.fetch_max(cas + 1, Ordering::Relaxed);
    }

    fn scan_entries(&self, now: u32, out: &mut Vec<persist::Entry>) -> bool {
        self.cache.scan(|_h, e| {
            if !expired(e.expires_at, now) {
                out.push(persist::Entry {
                    key: e.key().to_vec(),
                    flags: e.flags,
                    expires_at: e.expires_at,
                    cas: e.cas,
                    value: e.value().to_vec(),
                });
            }
        })
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            cache: self.cache.stats(),
            len: self.cache.len(),
            capacity: self.cache.capacity(),
            hash_collisions: self.collisions.load(Ordering::Relaxed),
        }
    }

    fn engine(&self) -> &'static str {
        "clock-cuckoo"
    }

    fn metrics(&self, out: &mut Vec<metrics::Sample>) {
        self.cache.metric_samples(out);
    }

    fn metrics_reset(&self) {
        self.cache.reset_metrics();
    }
}

// ---------------------------------------------------------------------------
// CuckooStore: unbounded (resizing) table, arbitrary item sizes
// ---------------------------------------------------------------------------

struct StoredItem {
    flags: u32,
    expires_at: u32,
    cas: u64,
    data: Box<[u8]>,
}

/// Chunks the background sweeper migrates per pass. Small enough that a
/// pass never monopolizes the stripe locks, large enough that an idle
/// server still finishes a doubling in a few hundred passes.
const SWEEP_CHUNKS: usize = 8;

/// Sweeper nap between passes when no migration is in flight.
const SWEEP_IDLE: std::time::Duration = std::time::Duration::from_millis(2);

/// No-eviction store over the general `cuckoo::CuckooMap`.
///
/// The map expands incrementally: writers that land on an unmigrated
/// bucket move a chunk themselves, so expansion progresses with the
/// write load. A read-mostly workload, however, could leave a migration
/// half-finished (and readers on the two-table path) indefinitely, so
/// each store spawns a detached background sweeper that drains pending
/// chunks whenever a migration is in flight. The sweeper holds only a
/// [`Weak`] reference and exits when the store is dropped.
pub struct CuckooStore {
    map: Arc<CuckooMap<Box<[u8]>, Arc<StoredItem>, 8>>,
    cas: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    updates: AtomicU64,
    deletes: AtomicU64,
    expirations: AtomicU64,
}

impl CuckooStore {
    pub fn new(capacity: usize) -> Self {
        let map = Arc::new(CuckooMap::with_capacity(capacity));
        let weak = Arc::downgrade(&map);
        std::thread::Builder::new()
            .name("cuckoo-sweeper".into())
            .spawn(move || loop {
                let Some(map) = weak.upgrade() else { return };
                let migrating = map.help_migrate(SWEEP_CHUNKS);
                // Don't keep the store alive while napping.
                drop(map);
                if !migrating {
                    std::thread::sleep(SWEEP_IDLE);
                }
            })
            .expect("failed to spawn cuckoo-sweeper thread");
        CuckooStore {
            map,
            cas: AtomicU64::new(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            expirations: AtomicU64::new(0),
        }
    }

    /// Fetches the live (unexpired) item, reaping it lazily otherwise.
    fn live(&self, key: &[u8], now: u32) -> Option<Arc<StoredItem>> {
        let owned: Box<[u8]> = key.into();
        let item = self.map.get(&owned)?;
        if expired(item.expires_at, now) {
            self.map.remove(&owned);
            self.expirations.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        Some(item)
    }
}

impl Store for CuckooStore {
    fn get(&self, key: &[u8], now: u32) -> Option<ItemOut> {
        match self.live(key, now) {
            Some(item) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(ItemOut { flags: item.flags, cas: item.cas, data: item.data.to_vec() })
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn get_many(&self, keys: &[&[u8]], now: u32, out: &mut Vec<Option<ItemOut>>) {
        let owned: Vec<Box<[u8]>> = keys.iter().map(|&k| k.into()).collect();
        let items = self.map.get_many(&owned);
        out.clear();
        out.reserve(keys.len());
        let (mut hits, mut misses) = (0u64, 0u64);
        for (key, item) in owned.iter().zip(items) {
            let live = item.filter(|item| {
                if expired(item.expires_at, now) {
                    self.map.remove(key);
                    self.expirations.fetch_add(1, Ordering::Relaxed);
                    false
                } else {
                    true
                }
            });
            match live {
                Some(item) => {
                    hits += 1;
                    out.push(Some(ItemOut {
                        flags: item.flags,
                        cas: item.cas,
                        data: item.data.to_vec(),
                    }));
                }
                None => {
                    misses += 1;
                    out.push(None);
                }
            }
        }
        if hits != 0 {
            self.hits.fetch_add(hits, Ordering::Relaxed);
        }
        if misses != 0 {
            self.misses.fetch_add(misses, Ordering::Relaxed);
        }
    }

    fn store(
        &self,
        verb: StoreVerb,
        key: &[u8],
        flags: u32,
        exptime: u32,
        data: &[u8],
        now: u32,
    ) -> StoreOutcome {
        let expires_at = deadline(exptime, now);
        let cas = self.cas.fetch_add(1, Ordering::Relaxed);
        let item = Arc::new(StoredItem { flags, expires_at, cas, data: data.into() });
        let stored = StoreOutcome::Stored { cas, expires_at };
        let owned: Box<[u8]> = key.into();
        match verb {
            StoreVerb::Set => {
                match self.map.upsert(owned, item) {
                    cuckoo::UpsertOutcome::Inserted => {
                        self.inserts.fetch_add(1, Ordering::Relaxed)
                    }
                    cuckoo::UpsertOutcome::Updated => {
                        self.updates.fetch_add(1, Ordering::Relaxed)
                    }
                };
                stored
            }
            StoreVerb::Add => {
                // Reap an expired incumbent first so `add` can win.
                let _ = self.live(key, now);
                match self.map.insert(owned, item) {
                    Ok(()) => {
                        self.inserts.fetch_add(1, Ordering::Relaxed);
                        stored
                    }
                    Err(_) => StoreOutcome::NotStored,
                }
            }
            StoreVerb::Replace => {
                if self.live(key, now).is_none() {
                    return StoreOutcome::NotStored;
                }
                match self.map.update(&owned, item) {
                    Some(_) => {
                        self.updates.fetch_add(1, Ordering::Relaxed);
                        stored
                    }
                    // Raced with a concurrent delete between the liveness
                    // check and the update.
                    None => StoreOutcome::NotStored,
                }
            }
        }
    }

    fn store_many(&self, cmds: &[StoreCmd<'_>], now: u32, out: &mut Vec<StoreOutcome>) {
        out.clear();
        out.reserve(cmds.len());
        let mut i = 0;
        while i < cmds.len() {
            let run = cmds[i..].iter().take_while(|c| c.verb == StoreVerb::Set).count();
            if run < 2 {
                // Conditional verbs (and lone sets) keep the
                // per-command path: add/replace hinge on per-key
                // liveness checks.
                let c = &cmds[i];
                out.push(self.store(c.verb, c.key, c.flags, c.exptime, c.data, now));
                i += 1;
                continue;
            }
            // A `set` run maps onto one pipelined `upsert_many`: cas
            // values are allocated in command order and duplicates
            // within the run resolve last-wins under the batch lock,
            // so outcomes match the per-command loop exactly.
            let mut entries: Vec<(Box<[u8]>, Arc<StoredItem>)> = Vec::with_capacity(run);
            for c in &cmds[i..i + run] {
                let expires_at = deadline(c.exptime, now);
                let cas = self.cas.fetch_add(1, Ordering::Relaxed);
                let item =
                    Arc::new(StoredItem { flags: c.flags, expires_at, cas, data: c.data.into() });
                entries.push((c.key.into(), item));
                out.push(StoreOutcome::Stored { cas, expires_at });
            }
            let (mut ins, mut upd) = (0u64, 0u64);
            for outcome in self.map.upsert_many(entries) {
                match outcome {
                    cuckoo::UpsertOutcome::Inserted => ins += 1,
                    cuckoo::UpsertOutcome::Updated => upd += 1,
                }
            }
            if ins != 0 {
                self.inserts.fetch_add(ins, Ordering::Relaxed);
            }
            if upd != 0 {
                self.updates.fetch_add(upd, Ordering::Relaxed);
            }
            i += run;
        }
    }

    fn delete(&self, key: &[u8]) -> bool {
        let owned: Box<[u8]> = key.into();
        if self.map.remove(&owned).is_some() {
            self.deletes.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn flush_all(&self) -> u64 {
        let mut flushed = 0u64;
        // The map has no O(1) clear; drain by scan + remove, repeating
        // until a displacement-clean pass finds nothing (the same loop
        // `ClockCache::flush` runs — see there for why a dirty empty
        // pass cannot be trusted).
        loop {
            let mut keys: Vec<Box<[u8]>> = Vec::new();
            let clean = self.map.scan(|k, _| keys.push(k.clone()));
            if keys.is_empty() && clean {
                return flushed;
            }
            for k in keys {
                if self.map.remove(&k).is_some() {
                    self.deletes.fetch_add(1, Ordering::Relaxed);
                    flushed += 1;
                }
            }
        }
    }

    fn restore(&self, key: &[u8], flags: u32, expires_at: u32, cas: u64, value: &[u8]) {
        let item = Arc::new(StoredItem { flags, expires_at, cas, data: value.into() });
        if matches!(self.map.upsert(key.into(), item), cuckoo::UpsertOutcome::Inserted) {
            self.inserts.fetch_add(1, Ordering::Relaxed);
        } else {
            self.updates.fetch_add(1, Ordering::Relaxed);
        }
        // Future allocations must stay above every restored cas.
        self.cas.fetch_max(cas + 1, Ordering::Relaxed);
    }

    fn scan_entries(&self, now: u32, out: &mut Vec<persist::Entry>) -> bool {
        self.map.scan(|k, item| {
            if !expired(item.expires_at, now) {
                out.push(persist::Entry {
                    key: k.to_vec(),
                    flags: item.flags,
                    expires_at: item.expires_at,
                    cas: item.cas,
                    value: item.data.to_vec(),
                });
            }
        })
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            cache: CacheStats {
                hits: self.hits.load(Ordering::Relaxed),
                misses: self.misses.load(Ordering::Relaxed),
                evictions: 0,
                second_chances: 0,
                inserts: self.inserts.load(Ordering::Relaxed),
                updates: self.updates.load(Ordering::Relaxed),
                deletes: self.deletes.load(Ordering::Relaxed),
                expirations: self.expirations.load(Ordering::Relaxed),
            },
            len: self.map.len(),
            capacity: self.map.capacity(),
            hash_collisions: 0,
        }
    }

    fn engine(&self) -> &'static str {
        "cuckoo-noevict"
    }

    fn metrics(&self, out: &mut Vec<metrics::Sample>) {
        self.map.metric_samples(out);
    }

    fn metrics_reset(&self) {
        self.map.reset_metrics();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stored(outcome: StoreOutcome) -> bool {
        matches!(outcome, StoreOutcome::Stored { .. })
    }

    fn check_common(store: &dyn Store) {
        let now = 1000;
        assert!(store.get(b"k", now).is_none());
        let outcome = store.store(StoreVerb::Set, b"k", 7, 0, b"value", now);
        let item = store.get(b"k", now).expect("stored item readable");
        assert_eq!(item.flags, 7);
        assert_eq!(item.data, b"value");
        // The outcome reports the exact metadata the engine committed.
        assert_eq!(
            outcome,
            StoreOutcome::Stored { cas: item.cas, expires_at: 0 }
        );

        // add fails on present, replace succeeds.
        assert_eq!(
            store.store(StoreVerb::Add, b"k", 0, 0, b"x", now),
            StoreOutcome::NotStored
        );
        assert!(stored(store.store(StoreVerb::Replace, b"k", 1, 0, b"y", now)));
        assert_eq!(store.get(b"k", now).unwrap().data, b"y");

        // replace fails on absent, add succeeds.
        assert_eq!(
            store.store(StoreVerb::Replace, b"nope", 0, 0, b"x", now),
            StoreOutcome::NotStored
        );
        assert!(stored(store.store(StoreVerb::Add, b"fresh", 0, 0, b"x", now)));

        // delete.
        assert!(store.delete(b"k"));
        assert!(!store.delete(b"k"));
        assert!(store.get(b"k", now).is_none());

        // relative expiry: live at now, gone after the deadline — and
        // the outcome carries the resolved absolute deadline.
        assert_eq!(
            store.store(StoreVerb::Set, b"ttl", 0, 10, b"v", now),
            StoreOutcome::Stored {
                cas: store.get(b"ttl", now).unwrap().cas,
                expires_at: now + 10
            }
        );
        assert!(store.get(b"ttl", now + 9).is_some());
        assert!(store.get(b"ttl", now + 10).is_none(), "expired item served");
        assert!(store.stats().cache.expirations >= 1);

        // an expired incumbent does not block add.
        assert!(stored(store.store(StoreVerb::Set, b"ttl2", 0, 10, b"v", now)));
        assert!(stored(store.store(StoreVerb::Add, b"ttl2", 0, 0, b"w", now + 100)));
        assert_eq!(store.get(b"ttl2", now + 100).unwrap().data, b"w");

        // cas values increase across stores.
        store.store(StoreVerb::Set, b"c1", 0, 0, b"v", now);
        store.store(StoreVerb::Set, b"c2", 0, 0, b"v", now);
        let c1 = store.get(b"c1", now).unwrap().cas;
        let c2 = store.get(b"c2", now).unwrap().cas;
        assert!(c2 > c1);

        // Batched get: per-key results (hits, misses, duplicates, cas)
        // match the single-key path, in request order.
        let keys: Vec<&[u8]> = vec![b"c1", b"no-such-key", b"c2", b"c1", b"fresh"];
        let mut many = Vec::new();
        store.get_many(&keys, now, &mut many);
        assert_eq!(many.len(), keys.len());
        for (key, got) in keys.iter().zip(&many) {
            let single = store.get(key, now);
            assert_eq!(
                got.as_ref().map(|i| (i.flags, i.cas, i.data.clone())),
                single.map(|i| (i.flags, i.cas, i.data)),
                "get_many diverged from get for {:?}",
                String::from_utf8_lossy(key)
            );
        }

        // Batched get applies (and counts) lazy expiry like single get.
        store.store(StoreVerb::Set, b"ttl3", 0, 10, b"v", now);
        let exp_before = store.stats().cache.expirations;
        let mut many = Vec::new();
        store.get_many(&[b"ttl3".as_slice()], now + 11, &mut many);
        assert!(
            many.len() == 1 && many[0].is_none(),
            "expired item served by get_many"
        );
        assert!(store.stats().cache.expirations > exp_before);

        // scan_entries sees exactly the live items, with their cas.
        let mut entries = Vec::new();
        while !{
            entries.clear();
            store.scan_entries(now, &mut entries)
        } {}
        let by_key: std::collections::HashMap<_, _> =
            entries.iter().map(|e| (e.key.clone(), e)).collect();
        assert!(by_key.contains_key(b"c1".as_slice()));
        assert!(by_key.contains_key(b"fresh".as_slice()));
        assert!(!by_key.contains_key(b"k".as_slice()), "deleted key scanned");
        assert_eq!(by_key[b"c1".as_slice()].cas, store.get(b"c1", now).unwrap().cas);

        // restore reinstates an item verbatim and cas allocation resumes
        // above it.
        store.restore(b"warm", 3, 0, 1_000_000, b"restored");
        let item = store.get(b"warm", now).unwrap();
        assert_eq!((item.flags, item.cas, item.data.as_slice()), (3, 1_000_000, b"restored".as_slice()));
        match store.store(StoreVerb::Set, b"after-warm", 0, 0, b"v", now) {
            StoreOutcome::Stored { cas, .. } => assert!(cas > 1_000_000),
            other => panic!("{other:?}"),
        }

        // flush_all empties the table.
        assert!(store.flush_all() > 0);
        assert!(store.get(b"fresh", now).is_none());
        assert!(store.get(b"warm", now).is_none());
        assert_eq!(store.stats().len, 0);
    }

    #[test]
    fn clock_store_semantics() {
        check_common(&ClockStore::new(1024));
    }

    #[test]
    fn cuckoo_store_semantics() {
        check_common(&CuckooStore::new(1024));
    }

    /// Drives the same mixed burst through `store_many` on one fresh
    /// store and a per-command `store` loop on another: outcomes
    /// (including cas allocation order) and resulting items must be
    /// identical.
    fn check_store_many(make: impl Fn() -> Box<dyn Store>) {
        let batched = make();
        let looped = make();
        let now = 1000;
        // Set runs (with an in-run duplicate), conditional verbs
        // breaking the runs, and a trailing run.
        let cmds: Vec<(StoreVerb, &[u8], &[u8])> = vec![
            (StoreVerb::Set, b"a", b"1"),
            (StoreVerb::Set, b"b", b"2"),
            (StoreVerb::Set, b"a", b"3"), // duplicate inside the run: last wins
            (StoreVerb::Add, b"a", b"x"), // NOT_STORED: present
            (StoreVerb::Add, b"c", b"4"),
            (StoreVerb::Replace, b"miss", b"x"), // NOT_STORED: absent
            (StoreVerb::Set, b"d", b"5"),
            (StoreVerb::Set, b"e", b"6"),
            (StoreVerb::Replace, b"b", b"7"),
        ];
        let burst: Vec<StoreCmd<'_>> = cmds
            .iter()
            .map(|(verb, key, data)| StoreCmd { verb: *verb, key, flags: 9, exptime: 0, data })
            .collect();
        let mut outcomes = Vec::new();
        batched.store_many(&burst, now, &mut outcomes);
        let expect: Vec<StoreOutcome> =
            cmds.iter().map(|(verb, key, data)| looped.store(*verb, key, 9, 0, data, now)).collect();
        assert_eq!(outcomes, expect, "store_many diverged from the per-command loop");
        for key in [b"a".as_slice(), b"b", b"c", b"d", b"e"] {
            let b = batched.get(key, now).expect("batched item present");
            let l = looped.get(key, now).expect("looped item present");
            assert_eq!(
                (b.flags, b.cas, b.data),
                (l.flags, l.cas, l.data),
                "item {:?} diverged",
                String::from_utf8_lossy(key)
            );
        }
        assert!(batched.get(b"miss", now).is_none());
        assert_eq!(batched.stats().cache.inserts, looped.stats().cache.inserts);
        assert_eq!(batched.stats().cache.updates, looped.stats().cache.updates);
    }

    #[test]
    fn clock_store_many_matches_loop() {
        check_store_many(|| Box::new(ClockStore::new(1024)));
    }

    #[test]
    fn cuckoo_store_many_matches_loop() {
        check_store_many(|| Box::new(CuckooStore::new(1024)));
    }

    #[test]
    fn clock_store_many_rejects_oversized_mid_run() {
        let s = ClockStore::new(64);
        let big = vec![0u8; INLINE_DATA + 1];
        let burst = [
            StoreCmd { verb: StoreVerb::Set, key: b"ok1", flags: 0, exptime: 0, data: b"v1" },
            StoreCmd { verb: StoreVerb::Set, key: b"huge", flags: 0, exptime: 0, data: &big },
            StoreCmd { verb: StoreVerb::Set, key: b"ok2", flags: 0, exptime: 0, data: b"v2" },
        ];
        let mut outcomes = Vec::new();
        s.store_many(&burst, 0, &mut outcomes);
        assert!(matches!(outcomes[0], StoreOutcome::Stored { .. }));
        assert_eq!(outcomes[1], StoreOutcome::TooLarge);
        assert!(matches!(outcomes[2], StoreOutcome::Stored { .. }));
        assert_eq!(s.get(b"ok1", 0).unwrap().data, b"v1");
        assert!(s.get(b"huge", 0).is_none());
        assert_eq!(s.get(b"ok2", 0).unwrap().data, b"v2");
    }

    #[test]
    fn clock_store_rejects_oversized_items() {
        let s = ClockStore::new(64);
        let big = vec![0u8; INLINE_DATA + 1];
        assert_eq!(
            s.store(StoreVerb::Set, b"k", 0, 0, &big, 0),
            StoreOutcome::TooLarge
        );
        // Key + value together must fit.
        let key = vec![b'k'; 200];
        let val = vec![0u8; INLINE_DATA - 200 + 1];
        assert_eq!(
            s.store(StoreVerb::Set, &key, 0, 0, &val, 0),
            StoreOutcome::TooLarge
        );
        let val = vec![1u8; INLINE_DATA - 200];
        assert!(stored(s.store(StoreVerb::Set, &key, 0, 0, &val, 0)));
        assert_eq!(s.get(&key, 0).unwrap().data, val);
    }

    #[test]
    fn cuckoo_store_takes_large_items() {
        let s = CuckooStore::new(64);
        let big = vec![7u8; 100_000];
        assert!(stored(s.store(StoreVerb::Set, b"big", 0, 0, &big, 0)));
        assert_eq!(s.get(b"big", 0).unwrap().data, big);
    }

    #[test]
    fn cuckoo_store_sweeper_finishes_migration_without_writers() {
        let s = CuckooStore::new(8192);
        // Insert until we catch an incremental expansion mid-flight, then
        // stop writing entirely: the background sweeper alone must drive
        // the migration to completion.
        let mut n = 0u64;
        while !s.map.is_migrating() {
            let key = format!("key-{n}");
            assert!(stored(s.store(StoreVerb::Set, key.as_bytes(), 0, 0, b"v", 0)));
            n += 1;
            assert!(n < 1_000_000, "never observed a migration in flight");
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while s.map.is_migrating() {
            assert!(
                std::time::Instant::now() < deadline,
                "sweeper failed to finish the migration"
            );
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        // Nothing lost across the sweeper-driven migration.
        for i in 0..n {
            let key = format!("key-{i}");
            assert_eq!(s.get(key.as_bytes(), 0).unwrap().data, b"v");
        }
    }

    #[test]
    fn clock_store_is_bounded() {
        let s = ClockStore::new(128);
        for i in 0..10_000u64 {
            let key = format!("key-{i}");
            assert!(stored(s.store(StoreVerb::Set, key.as_bytes(), 0, 0, b"v", 0)));
        }
        let st = s.stats();
        assert!(st.len <= st.capacity);
        assert!(st.cache.evictions > 0);
    }
}
