//! The memcached ASCII protocol subset: an incremental, zero-copy frame
//! parser and the matching response/request encoders.
//!
//! `cuckood` speaks the classic text protocol (`get`/`gets`, `set`,
//! `add`, `replace`, `delete`, `stats`, `version`, `quit`). Parsing is
//! **incremental**: [`parse`] inspects a byte buffer and either returns a
//! complete request plus the number of bytes it consumed, asks for more
//! bytes, or reports a protocol error. It is **zero-copy**: keys and
//! value payloads in the returned [`Request`] borrow directly from the
//! connection's receive buffer; nothing is copied until the storage layer
//! decides it needs to own the bytes.
//!
//! Error philosophy (mirrors memcached): an unknown command word answers
//! `ERROR`; a recognized command with malformed arguments answers
//! `CLIENT_ERROR <reason>`. Both leave the connection usable — the parser
//! resynchronizes by discarding through the end of the offending line
//! (and, when the header of a storage command was readable, its data
//! block). Only framing violations that make resynchronization impossible
//! (an unterminated line longer than [`MAX_LINE`], or a data block whose
//! declared length exceeds [`MAX_VALUE_SIZE`]) close the connection.
//! The parser never panics on any input; `tests/proto_roundtrip.rs`
//! drives that claim with a generative round-trip and a malformed corpus.

use core::fmt;

/// Longest accepted key, per the memcached protocol.
pub const MAX_KEY_LEN: usize = 250;
/// Longest accepted command line (covers multi-key `get`s).
pub const MAX_LINE: usize = 8192;
/// Largest accepted value payload (memcached's classic 1 MiB default).
pub const MAX_VALUE_SIZE: usize = 1 << 20;

/// Which storage verb a [`Request::Store`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreVerb {
    /// Unconditional store.
    Set,
    /// Store only if the key is absent.
    Add,
    /// Store only if the key is present.
    Replace,
}

impl StoreVerb {
    pub fn as_str(self) -> &'static str {
        match self {
            StoreVerb::Set => "set",
            StoreVerb::Add => "add",
            StoreVerb::Replace => "replace",
        }
    }
}

/// Which statistics section a `stats` request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsArg {
    /// Bare `stats` — the classic memcached general section.
    General,
    /// `stats cuckoo` — the cuckoo observability counters as `STAT`
    /// lines (stripe contention, BFS path lengths, seqlock retries,
    /// migration progress, HTM rollup).
    Cuckoo,
    /// `stats prometheus` — the same series in Prometheus text
    /// exposition format (for scraping through `nc`/`curl` pipes).
    Prometheus,
    /// `stats reset` — zero the resettable counters (latency
    /// histograms, cuckoo metric families, HTM rollup).
    Reset,
}

impl StatsArg {
    pub fn as_str(self) -> &'static str {
        match self {
            StatsArg::General => "",
            StatsArg::Cuckoo => "cuckoo",
            StatsArg::Prometheus => "prometheus",
            StatsArg::Reset => "reset",
        }
    }
}

/// One complete client request, borrowing key/value bytes from the
/// receive buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum Request<'a> {
    /// `get`/`gets <key>+` — `with_cas` distinguishes `gets`.
    Get { keys: Vec<&'a [u8]>, with_cas: bool },
    /// `set`/`add`/`replace <key> <flags> <exptime> <bytes> [noreply]`
    /// followed by a `<bytes>`-long data block.
    Store {
        verb: StoreVerb,
        key: &'a [u8],
        flags: u32,
        exptime: u32,
        data: &'a [u8],
        noreply: bool,
    },
    /// `delete <key> [noreply]`
    Delete { key: &'a [u8], noreply: bool },
    /// `flush_all [delay] [noreply]` — drop every item. Delayed flushes
    /// (`delay > 0`) are parsed but refused at execution; they cannot be
    /// replayed deterministically from the op log.
    FlushAll { delay: u32, noreply: bool },
    /// `replicate <lsn>` — replication handshake: this connection stops
    /// being a request/response channel and becomes a one-way feed of op
    /// log records starting after the replica's last-applied LSN.
    Replicate { lsn: u64 },
    /// `promote` — a replica detaches from its primary and starts
    /// accepting writes.
    Promote,
    /// `stats [cuckoo|prometheus|reset]`
    Stats { arg: StatsArg },
    /// `version`
    Version,
    /// `quit`
    Quit,
}

/// A protocol-level failure. `recover_by` tells the connection how many
/// bytes to discard so the stream is resynchronized at the next command
/// boundary; `None` means the connection must close.
#[derive(Debug, PartialEq, Eq)]
pub struct ProtoError {
    pub kind: ErrorKind,
    pub message: String,
    pub recover_by: Option<usize>,
}

/// How the error is reported to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// `ERROR\r\n` — the command word itself is unknown.
    UnknownCommand,
    /// `CLIENT_ERROR <msg>\r\n` — known command, malformed arguments or
    /// data block.
    Client,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ErrorKind::UnknownCommand => write!(f, "ERROR"),
            ErrorKind::Client => write!(f, "CLIENT_ERROR {}", self.message),
        }
    }
}

impl ProtoError {
    fn client(message: impl Into<String>, recover_by: Option<usize>) -> Self {
        ProtoError { kind: ErrorKind::Client, message: message.into(), recover_by }
    }

    fn unknown(recover_by: usize) -> Self {
        ProtoError {
            kind: ErrorKind::UnknownCommand,
            message: String::new(),
            recover_by: Some(recover_by),
        }
    }

    /// Renders the on-wire error line.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self.kind {
            ErrorKind::UnknownCommand => out.extend_from_slice(b"ERROR\r\n"),
            ErrorKind::Client => {
                out.extend_from_slice(b"CLIENT_ERROR ");
                out.extend_from_slice(self.message.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
        }
    }
}

/// Outcome of one [`parse`] call.
#[derive(Debug, PartialEq, Eq)]
pub enum Parsed<'a> {
    /// A complete request occupying `consumed` bytes of the buffer.
    Ok { request: Request<'a>, consumed: usize },
    /// The buffer holds only a prefix of a request; read more bytes.
    Incomplete,
    /// Protocol violation; see [`ProtoError::recover_by`].
    Err(ProtoError),
}

/// Finds `\r\n` in `buf`, returning the line (exclusive) and the offset
/// just past the terminator. Tolerates a bare `\n` (memcached does too).
fn take_line(buf: &[u8]) -> Option<(&[u8], usize)> {
    let nl = buf.iter().position(|&b| b == b'\n')?;
    let line = if nl > 0 && buf[nl - 1] == b'\r' { &buf[..nl - 1] } else { &buf[..nl] };
    Some((line, nl + 1))
}

/// Splits an ASCII line on runs of spaces.
fn tokens(line: &[u8]) -> impl Iterator<Item = &[u8]> {
    line.split(|&b| b == b' ').filter(|t| !t.is_empty())
}

fn parse_u32(tok: &[u8], what: &str, recover: usize) -> Result<u32, ProtoError> {
    parse_u64(tok, what, recover).and_then(|v| {
        u32::try_from(v)
            .map_err(|_| ProtoError::client(format!("bad {what}"), Some(recover)))
    })
}

fn parse_u64(tok: &[u8], what: &str, recover: usize) -> Result<u64, ProtoError> {
    if tok.is_empty() || tok.len() > 20 || !tok.iter().all(|b| b.is_ascii_digit()) {
        return Err(ProtoError::client(format!("bad {what}"), Some(recover)));
    }
    let mut v: u64 = 0;
    for &b in tok {
        v = v
            .checked_mul(10)
            .and_then(|v| v.checked_add((b - b'0') as u64))
            .ok_or_else(|| ProtoError::client(format!("bad {what}"), Some(recover)))?;
    }
    Ok(v)
}

fn check_key(key: &[u8], recover: usize) -> Result<(), ProtoError> {
    if key.len() > MAX_KEY_LEN {
        return Err(ProtoError::client("key too long", Some(recover)));
    }
    // Keys are printable ASCII without whitespace/control bytes.
    if key.iter().any(|&b| !(0x21..=0x7e).contains(&b)) {
        return Err(ProtoError::client("invalid key", Some(recover)));
    }
    Ok(())
}

/// Attempts to parse one request from the front of `buf`.
pub fn parse(buf: &[u8]) -> Parsed<'_> {
    let Some((line, line_end)) = take_line(buf) else {
        if buf.len() > MAX_LINE {
            // No terminator within the line cap: unrecoverable framing.
            return Parsed::Err(ProtoError::client("line too long", None));
        }
        return Parsed::Incomplete;
    };
    if line.len() > MAX_LINE {
        return Parsed::Err(ProtoError::client("line too long", None));
    }
    let mut toks = tokens(line);
    let Some(cmd) = toks.next() else {
        // Blank line: memcached answers ERROR and keeps going.
        return Parsed::Err(ProtoError::unknown(line_end));
    };
    match cmd {
        b"get" | b"gets" => {
            let with_cas = cmd == b"gets";
            let keys: Vec<&[u8]> = toks.collect();
            if keys.is_empty() {
                return Parsed::Err(ProtoError::client("get requires a key", Some(line_end)));
            }
            for key in &keys {
                if let Err(e) = check_key(key, line_end) {
                    return Parsed::Err(e);
                }
            }
            Parsed::Ok { request: Request::Get { keys, with_cas }, consumed: line_end }
        }
        b"set" | b"add" | b"replace" => {
            let verb = match cmd {
                b"set" => StoreVerb::Set,
                b"add" => StoreVerb::Add,
                _ => StoreVerb::Replace,
            };
            match parse_store_tail(verb, toks, buf, line_end) {
                Ok(Some((request, consumed))) => Parsed::Ok { request, consumed },
                Ok(None) => Parsed::Incomplete,
                Err(e) => Parsed::Err(e),
            }
        }
        b"delete" => {
            let Some(key) = toks.next() else {
                return Parsed::Err(ProtoError::client(
                    "delete requires a key",
                    Some(line_end),
                ));
            };
            if let Err(e) = check_key(key, line_end) {
                return Parsed::Err(e);
            }
            let noreply = match toks.next() {
                None => false,
                Some(b"noreply") => true,
                Some(b"0") => false, // legacy `delete <key> 0` time argument
                Some(_) => {
                    return Parsed::Err(ProtoError::client(
                        "bad delete arguments",
                        Some(line_end),
                    ))
                }
            };
            if toks.next().is_some() {
                return Parsed::Err(ProtoError::client("bad delete arguments", Some(line_end)));
            }
            Parsed::Ok { request: Request::Delete { key, noreply }, consumed: line_end }
        }
        b"stats" => {
            let arg = match toks.next() {
                None => StatsArg::General,
                Some(b"cuckoo") => StatsArg::Cuckoo,
                Some(b"prometheus") => StatsArg::Prometheus,
                Some(b"reset") => StatsArg::Reset,
                Some(_) => {
                    return Parsed::Err(ProtoError::client(
                        "bad stats argument",
                        Some(line_end),
                    ))
                }
            };
            if toks.next().is_some() {
                return Parsed::Err(ProtoError::client("bad stats argument", Some(line_end)));
            }
            Parsed::Ok { request: Request::Stats { arg }, consumed: line_end }
        }
        b"flush_all" => {
            let mut delay = 0u32;
            let mut noreply = false;
            match toks.next() {
                None => {}
                Some(b"noreply") => noreply = true,
                Some(tok) => {
                    delay = match parse_u32(tok, "flush_all delay", line_end) {
                        Ok(v) => v,
                        Err(e) => return Parsed::Err(e),
                    };
                    match toks.next() {
                        None => {}
                        Some(b"noreply") => noreply = true,
                        Some(_) => {
                            return Parsed::Err(ProtoError::client(
                                "bad flush_all arguments",
                                Some(line_end),
                            ))
                        }
                    }
                }
            }
            if toks.next().is_some() {
                return Parsed::Err(ProtoError::client(
                    "bad flush_all arguments",
                    Some(line_end),
                ));
            }
            Parsed::Ok { request: Request::FlushAll { delay, noreply }, consumed: line_end }
        }
        b"replicate" => {
            let Some(tok) = toks.next() else {
                return Parsed::Err(ProtoError::client(
                    "replicate requires an lsn",
                    Some(line_end),
                ));
            };
            let lsn = match parse_u64(tok, "lsn", line_end) {
                Ok(v) => v,
                Err(e) => return Parsed::Err(e),
            };
            if toks.next().is_some() {
                return Parsed::Err(ProtoError::client(
                    "bad replicate arguments",
                    Some(line_end),
                ));
            }
            Parsed::Ok { request: Request::Replicate { lsn }, consumed: line_end }
        }
        b"promote" => {
            if toks.next().is_some() {
                return Parsed::Err(ProtoError::client(
                    "promote takes no arguments",
                    Some(line_end),
                ));
            }
            Parsed::Ok { request: Request::Promote, consumed: line_end }
        }
        b"version" => Parsed::Ok { request: Request::Version, consumed: line_end },
        b"quit" => Parsed::Ok { request: Request::Quit, consumed: line_end },
        _ => Parsed::Err(ProtoError::unknown(line_end)),
    }
}

/// Parses `<key> <flags> <exptime> <bytes> [noreply]` plus the data
/// block. `Ok(None)` means the data block has not fully arrived.
#[allow(clippy::type_complexity)]
fn parse_store_tail<'a>(
    verb: StoreVerb,
    mut toks: impl Iterator<Item = &'a [u8]>,
    buf: &'a [u8],
    line_end: usize,
) -> Result<Option<(Request<'a>, usize)>, ProtoError> {
    let usage = || ProtoError::client(format!("usage: {} <key> <flags> <exptime> <bytes> [noreply]", verb.as_str()), Some(line_end));
    let key = toks.next().ok_or_else(usage)?;
    check_key(key, line_end)?;
    let flags = parse_u32(toks.next().ok_or_else(usage)?, "flags", line_end)?;
    let exptime = parse_u32(toks.next().ok_or_else(usage)?, "exptime", line_end)?;
    let bytes = parse_u64(toks.next().ok_or_else(usage)?, "bytes", line_end)? as usize;
    let noreply = match toks.next() {
        None => false,
        Some(b"noreply") => true,
        Some(_) => return Err(usage()),
    };
    if toks.next().is_some() {
        return Err(usage());
    }
    if bytes > MAX_VALUE_SIZE {
        // Discarding a multi-megabyte bogus block is how memcached DoSes
        // itself; close instead.
        return Err(ProtoError::client("object too large for cache", None));
    }
    let total = line_end + bytes + 2;
    if buf.len() < total {
        return Ok(None);
    }
    let data = &buf[line_end..line_end + bytes];
    if &buf[line_end + bytes..total] != b"\r\n" {
        // Data block not terminated where promised: client and server
        // disagree on framing; skip the bad block and resynchronize.
        return Err(ProtoError::client("bad data chunk", Some(total)));
    }
    Ok(Some((
        Request::Store { verb, key, flags, exptime, data, noreply },
        total,
    )))
}

// ---------------------------------------------------------------------------
// Response encoding (server side)
// ---------------------------------------------------------------------------

/// One `VALUE` stanza of a `get` response. `cas` prints only for `gets`.
pub fn encode_value(out: &mut Vec<u8>, key: &[u8], flags: u32, data: &[u8], cas: Option<u64>) {
    out.extend_from_slice(b"VALUE ");
    out.extend_from_slice(key);
    let mut num = [0u8; 24];
    out.push(b' ');
    out.extend_from_slice(fmt_u64(flags as u64, &mut num));
    out.push(b' ');
    out.extend_from_slice(fmt_u64(data.len() as u64, &mut num));
    if let Some(cas) = cas {
        out.push(b' ');
        out.extend_from_slice(fmt_u64(cas, &mut num));
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
}

/// Formats `v` into `buf` without allocating; returns the used suffix.
fn fmt_u64(mut v: u64, buf: &mut [u8; 24]) -> &[u8] {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    &buf[i..]
}

/// `END\r\n` terminating a `get` response.
pub fn encode_end(out: &mut Vec<u8>) {
    out.extend_from_slice(b"END\r\n");
}

/// A one-word reply line (`STORED`, `NOT_STORED`, `DELETED`, ...).
pub fn encode_line(out: &mut Vec<u8>, word: &str) {
    out.extend_from_slice(word.as_bytes());
    out.extend_from_slice(b"\r\n");
}

/// One `STAT <name> <value>` line.
pub fn encode_stat(out: &mut Vec<u8>, name: &str, value: impl fmt::Display) {
    out.extend_from_slice(b"STAT ");
    out.extend_from_slice(name.as_bytes());
    out.push(b' ');
    out.extend_from_slice(value.to_string().as_bytes());
    out.extend_from_slice(b"\r\n");
}

/// One `STAT <name> <value>` line for an integer value, formatted into a
/// stack buffer: the whole stats body can render without allocating.
pub fn encode_stat_u64(out: &mut Vec<u8>, name: &str, value: u64) {
    out.extend_from_slice(b"STAT ");
    out.extend_from_slice(name.as_bytes());
    out.push(b' ');
    let mut num = [0u8; 24];
    out.extend_from_slice(fmt_u64(value, &mut num));
    out.extend_from_slice(b"\r\n");
}

// ---------------------------------------------------------------------------
// Request encoding (client side: net driver, tests)
// ---------------------------------------------------------------------------

/// Renders `req` in wire format — the exact inverse of [`parse`], used by
/// the pipelined net driver and the round-trip property test.
pub fn encode_request(out: &mut Vec<u8>, req: &Request<'_>) {
    let mut num = [0u8; 24];
    match req {
        Request::Get { keys, with_cas } => {
            out.extend_from_slice(if *with_cas { b"gets" } else { b"get" });
            for key in keys {
                out.push(b' ');
                out.extend_from_slice(key);
            }
            out.extend_from_slice(b"\r\n");
        }
        Request::Store { verb, key, flags, exptime, data, noreply } => {
            out.extend_from_slice(verb.as_str().as_bytes());
            out.push(b' ');
            out.extend_from_slice(key);
            out.push(b' ');
            out.extend_from_slice(fmt_u64(*flags as u64, &mut num));
            out.push(b' ');
            out.extend_from_slice(fmt_u64(*exptime as u64, &mut num));
            out.push(b' ');
            out.extend_from_slice(fmt_u64(data.len() as u64, &mut num));
            if *noreply {
                out.extend_from_slice(b" noreply");
            }
            out.extend_from_slice(b"\r\n");
            out.extend_from_slice(data);
            out.extend_from_slice(b"\r\n");
        }
        Request::Delete { key, noreply } => {
            out.extend_from_slice(b"delete ");
            out.extend_from_slice(key);
            if *noreply {
                out.extend_from_slice(b" noreply");
            }
            out.extend_from_slice(b"\r\n");
        }
        Request::Stats { arg } => {
            out.extend_from_slice(b"stats");
            if *arg != StatsArg::General {
                out.push(b' ');
                out.extend_from_slice(arg.as_str().as_bytes());
            }
            out.extend_from_slice(b"\r\n");
        }
        Request::FlushAll { delay, noreply } => {
            out.extend_from_slice(b"flush_all");
            if *delay != 0 {
                out.push(b' ');
                out.extend_from_slice(fmt_u64(*delay as u64, &mut num));
            }
            if *noreply {
                out.extend_from_slice(b" noreply");
            }
            out.extend_from_slice(b"\r\n");
        }
        Request::Replicate { lsn } => {
            out.extend_from_slice(b"replicate ");
            out.extend_from_slice(fmt_u64(*lsn, &mut num));
            out.extend_from_slice(b"\r\n");
        }
        Request::Promote => out.extend_from_slice(b"promote\r\n"),
        Request::Version => out.extend_from_slice(b"version\r\n"),
        Request::Quit => out.extend_from_slice(b"quit\r\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(bytes: &[u8]) -> (Request<'_>, usize) {
        match parse(bytes) {
            Parsed::Ok { request, consumed } => (request, consumed),
            other => panic!("expected Ok, got {other:?}"),
        }
    }

    #[test]
    fn parses_get_multi() {
        let (req, used) = parse_one(b"get alpha beta\r\nget next\r\n");
        assert_eq!(used, 16);
        assert_eq!(
            req,
            Request::Get { keys: vec![b"alpha".as_slice(), b"beta".as_slice()], with_cas: false }
        );
    }

    #[test]
    fn parses_set_with_data() {
        let (req, used) = parse_one(b"set k 7 0 5\r\nhello\r\n");
        assert_eq!(used, 20);
        match req {
            Request::Store { verb, key, flags, exptime, data, noreply } => {
                assert_eq!(verb, StoreVerb::Set);
                assert_eq!(key, b"k");
                assert_eq!(flags, 7);
                assert_eq!(exptime, 0);
                assert_eq!(data, b"hello");
                assert!(!noreply);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn set_waits_for_data_block() {
        assert_eq!(parse(b"set k 0 0 5\r\nhel"), Parsed::Incomplete);
        assert_eq!(parse(b"set k 0 0 5\r\nhello\r"), Parsed::Incomplete);
        assert_eq!(parse(b"set k 0 0"), Parsed::Incomplete);
    }

    #[test]
    fn value_may_contain_newlines() {
        let (req, _) = parse_one(b"set k 0 0 4\r\na\r\nb\r\n");
        match req {
            Request::Store { data, .. } => assert_eq!(data, b"a\r\nb"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_command_is_recoverable() {
        match parse(b"incr k 1\r\nversion\r\n") {
            Parsed::Err(e) => {
                assert_eq!(e.kind, ErrorKind::UnknownCommand);
                assert_eq!(e.recover_by, Some(10));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn flush_all_parses_all_forms() {
        for (line, delay, noreply) in [
            (&b"flush_all\r\n"[..], 0u32, false),
            (b"flush_all noreply\r\n", 0, true),
            (b"flush_all 30\r\n", 30, false),
            (b"flush_all 30 noreply\r\n", 30, true),
        ] {
            match parse(line) {
                Parsed::Ok { request: Request::FlushAll { delay: d, noreply: n }, consumed } => {
                    assert_eq!((d, n), (delay, noreply), "{line:?}");
                    assert_eq!(consumed, line.len());
                }
                other => panic!("{line:?}: {other:?}"),
            }
        }
        assert!(matches!(parse(b"flush_all x\r\n"), Parsed::Err(_)));
        assert!(matches!(parse(b"flush_all 1 2\r\n"), Parsed::Err(_)));
    }

    #[test]
    fn replicate_and_promote_parse() {
        match parse(b"replicate 42\r\n") {
            Parsed::Ok { request: Request::Replicate { lsn }, .. } => assert_eq!(lsn, 42),
            other => panic!("{other:?}"),
        }
        assert!(matches!(parse(b"replicate\r\n"), Parsed::Err(_)));
        assert!(matches!(parse(b"replicate x\r\n"), Parsed::Err(_)));
        assert!(matches!(
            parse(b"promote\r\n"),
            Parsed::Ok { request: Request::Promote, .. }
        ));
        assert!(matches!(parse(b"promote now\r\n"), Parsed::Err(_)));
    }

    #[test]
    fn bad_byte_count_is_client_error() {
        match parse(b"set k 0 0 abc\r\n") {
            Parsed::Err(e) => {
                assert_eq!(e.kind, ErrorKind::Client);
                assert!(e.recover_by.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversized_value_closes() {
        let line = format!("set k 0 0 {}\r\n", MAX_VALUE_SIZE + 1);
        match parse(line.as_bytes()) {
            Parsed::Err(e) => assert_eq!(e.recover_by, None),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stats_argument_parses_and_rejects() {
        let (req, _) = parse_one(b"stats\r\n");
        assert_eq!(req, Request::Stats { arg: StatsArg::General });
        let (req, _) = parse_one(b"stats prometheus\r\n");
        assert_eq!(req, Request::Stats { arg: StatsArg::Prometheus });
        match parse(b"stats bogus\r\nversion\r\n") {
            Parsed::Err(e) => {
                assert_eq!(e.kind, ErrorKind::Client);
                assert_eq!(e.recover_by, Some(13), "resynchronizes at the next line");
            }
            other => panic!("{other:?}"),
        }
        match parse(b"stats cuckoo extra\r\n") {
            Parsed::Err(e) => assert_eq!(e.kind, ErrorKind::Client),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn roundtrip_encode_parse() {
        let reqs = [
            Request::Get { keys: vec![b"a".as_slice(), b"bb".as_slice()], with_cas: true },
            Request::Store {
                verb: StoreVerb::Add,
                key: b"key",
                flags: 42,
                exptime: 100,
                data: b"payload",
                noreply: true,
            },
            Request::Delete { key: b"key", noreply: false },
            Request::Stats { arg: StatsArg::General },
            Request::Stats { arg: StatsArg::Cuckoo },
            Request::Stats { arg: StatsArg::Prometheus },
            Request::Stats { arg: StatsArg::Reset },
            Request::Version,
            Request::Quit,
        ];
        for req in &reqs {
            let mut wire = Vec::new();
            encode_request(&mut wire, req);
            let (parsed, used) = parse_one(&wire);
            assert_eq!(used, wire.len());
            assert_eq!(&parsed, req);
        }
    }
}
