//! The accept/worker machinery: thread-per-core workers with sharded
//! connection ownership.
//!
//! One accept thread hands each new socket to a worker over a channel,
//! round-robin; from then on exactly one worker ever touches that
//! connection (no cross-thread connection state, no locks on the hot
//! path — the only shared mutable structures are the concurrent store
//! and the stats counters, which is the point of fronting a concurrent
//! cuckoo table). Workers run a poll-free event loop over their shard:
//! nonblocking sockets, a pump per connection per sweep, and a short
//! park when a sweep makes no progress. That trades a few hundred
//! microseconds of idle latency for zero dependencies; under load the
//! loop never parks and throughput is bounded by the table, not the
//! loop.
//!
//! Shutdown ([`ServerHandle::shutdown`] or SIGINT via [`crate::signal`])
//! is a drain: the accept loop stops taking sockets, every connection
//! executes the requests it has already received and flushes queued
//! responses (bounded by [`DRAIN_LIMIT`]), then sockets close and the
//! threads join.

use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::conn::{Conn, PumpResult};
use crate::signal;
use crate::stats::ServerStats;
use crate::store::{ClockStore, CuckooStore, Store};

/// How long a draining shutdown waits for connections to finish.
pub const DRAIN_LIMIT: Duration = Duration::from_secs(5);
/// Idle park between sweeps that made no progress.
const IDLE_PARK: Duration = Duration::from_micros(200);

/// Server configuration (see `cuckood --help`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Bind address. Port 0 picks an ephemeral port (see
    /// [`ServerHandle::local_addr`]).
    pub addr: String,
    pub port: u16,
    /// Maximum resident items (clock mode) / initial capacity (no-evict
    /// mode).
    pub capacity: usize,
    /// Worker threads; 0 = one per available core.
    pub workers: usize,
    /// Use the unbounded `CuckooMap` store instead of the CLOCK cache.
    pub no_evict: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            addr: "127.0.0.1".to_string(),
            port: 11211,
            capacity: 1 << 20,
            workers: 0,
            no_evict: false,
        }
    }
}

/// Shared state every worker sees.
pub struct ServerCtx {
    pub store: Arc<dyn Store>,
    pub stats: ServerStats,
    pub workers: usize,
    shutdown: AtomicBool,
}

impl ServerCtx {
    /// Shutdown requested, by handle or by signal.
    pub fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::requested()
    }
}

/// A running server; dropping it without calling [`shutdown`] detaches
/// the threads (they stop when the process does).
///
/// [`shutdown`]: ServerHandle::shutdown
pub struct ServerHandle {
    ctx: Arc<ServerCtx>,
    local_addr: std::net::SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// The shared context (stats, store) — used by tests and benches.
    pub fn ctx(&self) -> &Arc<ServerCtx> {
        &self.ctx
    }

    /// Requests a graceful drain and joins every thread.
    pub fn shutdown(mut self) {
        self.ctx.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Builds the store named by `config`.
fn make_store(config: &Config) -> Arc<dyn Store> {
    if config.no_evict {
        Arc::new(CuckooStore::new(config.capacity))
    } else {
        Arc::new(ClockStore::new(config.capacity))
    }
}

/// Binds and spawns the accept and worker threads.
pub fn spawn(config: Config) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind((config.addr.as_str(), config.port))?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;

    let workers = if config.workers == 0 {
        thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        config.workers
    };

    let ctx = Arc::new(ServerCtx {
        store: make_store(&config),
        stats: ServerStats::new(),
        workers,
        shutdown: AtomicBool::new(false),
    });

    let mut senders = Vec::with_capacity(workers);
    let mut handles = Vec::with_capacity(workers);
    for w in 0..workers {
        let (tx, rx) = mpssc_channel();
        senders.push(tx);
        let ctx = Arc::clone(&ctx);
        handles.push(
            thread::Builder::new()
                .name(format!("cuckood-worker-{w}"))
                .spawn(move || worker_loop(rx, ctx))
                .expect("spawn worker"),
        );
    }

    let accept_ctx = Arc::clone(&ctx);
    let accept = thread::Builder::new()
        .name("cuckood-accept".to_string())
        .spawn(move || accept_loop(listener, senders, accept_ctx))
        .expect("spawn acceptor");

    Ok(ServerHandle { ctx, local_addr, accept: Some(accept), workers: handles })
}

// mpsc::channel with the type spelled once.
fn mpssc_channel() -> (mpsc::Sender<TcpStream>, mpsc::Receiver<TcpStream>) {
    mpsc::channel()
}

fn accept_loop(listener: TcpListener, senders: Vec<mpsc::Sender<TcpStream>>, ctx: Arc<ServerCtx>) {
    let mut next = 0usize;
    while !ctx.draining() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                ctx.stats.total_connections.fetch_add(1, Ordering::Relaxed);
                ctx.stats.curr_connections.fetch_add(1, Ordering::Relaxed);
                // Round-robin sharding; a worker that has exited (only
                // during shutdown) just drops the socket.
                let _ = senders[next % senders.len()].send(stream);
                next += 1;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(1));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
    // Dropping `senders` lets idle workers notice shutdown immediately.
}

fn worker_loop(rx: mpsc::Receiver<TcpStream>, ctx: Arc<ServerCtx>) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut drain_started: Option<Instant> = None;

    loop {
        // Adopt newly accepted connections.
        while let Ok(stream) = rx.try_recv() {
            conns.push(Conn::new(stream));
        }

        let draining = ctx.draining();
        if draining && drain_started.is_none() {
            drain_started = Some(Instant::now());
            for c in &mut conns {
                c.begin_drain(&ctx);
            }
        }

        let mut progress = false;
        conns.retain_mut(|c| match c.pump(&ctx) {
            PumpResult::Open { progress: p } => {
                progress |= p;
                true
            }
            PumpResult::Closed => {
                ctx.stats.curr_connections.fetch_sub(1, Ordering::Relaxed);
                progress = true;
                false
            }
        });

        if draining {
            let expired = drain_started
                .map(|t| t.elapsed() > DRAIN_LIMIT)
                .unwrap_or(false);
            if conns.is_empty() || expired {
                // Anything still open past the limit closes hard.
                for _ in conns.drain(..) {
                    ctx.stats.curr_connections.fetch_sub(1, Ordering::Relaxed);
                }
                return;
            }
        }

        if !progress {
            thread::park_timeout(IDLE_PARK);
        }
    }
}
