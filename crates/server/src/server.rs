//! The accept/worker machinery: thread-per-core workers with sharded
//! connection ownership.
//!
//! One accept thread hands each new socket to a worker over a channel,
//! round-robin; from then on exactly one worker ever touches that
//! connection (no cross-thread connection state, no locks on the hot
//! path — the only shared mutable structures are the concurrent store
//! and the stats counters, which is the point of fronting a concurrent
//! cuckoo table). Workers run a poll-free event loop over their shard:
//! nonblocking sockets, a pump per connection per sweep, and a short
//! park when a sweep makes no progress. That trades a few hundred
//! microseconds of idle latency for zero dependencies; under load the
//! loop never parks and throughput is bounded by the table, not the
//! loop.
//!
//! Shutdown ([`ServerHandle::shutdown`] or SIGINT via [`crate::signal`])
//! is a drain: the accept loop stops taking sockets, every connection
//! executes the requests it has already received and flushes queued
//! responses (bounded by [`DRAIN_LIMIT`]), then sockets close and the
//! threads join.

// ORDERING-FILE: stats.counter — connection counters for the stats command.
use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::conn::{Conn, PumpResult};
use crate::persist_store::PersistentStore;
use crate::signal;
use crate::stats::ServerStats;
use crate::store::{ClockStore, CuckooStore, Store};
use metrics::persist::PersistMetrics;
use persist::PersistConfig;

/// How long a draining shutdown waits for connections to finish.
pub const DRAIN_LIMIT: Duration = Duration::from_secs(5);
/// Idle park between sweeps that made no progress.
const IDLE_PARK: Duration = Duration::from_micros(200);

/// Server configuration (see `cuckood --help`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Bind address. Port 0 picks an ephemeral port (see
    /// [`ServerHandle::local_addr`]).
    pub addr: String,
    pub port: u16,
    /// Maximum resident items (clock mode) / initial capacity (no-evict
    /// mode).
    pub capacity: usize,
    /// Worker threads; 0 = one per available core.
    pub workers: usize,
    /// Use the unbounded `CuckooMap` store instead of the CLOCK cache.
    pub no_evict: bool,
    /// Durability: op log + snapshots live here; `None` disables
    /// persistence entirely.
    pub data_dir: Option<std::path::PathBuf>,
    /// Group-commit fsync cadence in milliseconds (the maximum
    /// acknowledged-but-lost window on `kill -9`).
    pub fsync_interval_ms: u64,
    /// Background snapshot/compaction cadence in seconds (0 = only at
    /// shutdown).
    pub snapshot_interval_secs: u64,
    /// Start as a read-only replica of `host:port` (requires
    /// `data_dir`). Writes are refused until `promote`.
    pub replica_of: Option<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            addr: "127.0.0.1".to_string(),
            port: 11211,
            capacity: 1 << 20,
            workers: 0,
            no_evict: false,
            data_dir: None,
            fsync_interval_ms: 5,
            snapshot_interval_secs: 60,
            replica_of: None,
        }
    }
}

/// Shared state every worker sees.
pub struct ServerCtx {
    pub store: Arc<dyn Store>,
    /// The same store, concretely typed, when persistence is on — the
    /// replication feeder/applier need the persister and
    /// `apply_replicated`, which `dyn Store` does not expose.
    pub persist: Option<Arc<PersistentStore>>,
    pub stats: ServerStats,
    pub workers: usize,
    shutdown: AtomicBool,
    /// True while this node follows a primary; client writes are refused.
    read_only: AtomicBool,
    /// Flipped by `promote`: the applier detaches and stays detached.
    promoted: AtomicBool,
    /// Live replication feeds (backs the `replicas_connected` gauge).
    pub feeders: std::sync::atomic::AtomicU64,
}

impl ServerCtx {
    /// Shutdown requested, by handle or by signal.
    pub fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::requested()
    }

    pub fn is_read_only(&self) -> bool {
        // ORDERING: publish.acquire-load
        self.read_only.load(Ordering::Acquire)
    }

    /// `promote`: stop following the primary, start taking writes.
    /// Returns `false` when this node was not a replica.
    pub fn promote(&self) -> bool {
        // ORDERING: handoff.acqrel-rmw
        let was_replica = self.read_only.swap(false, Ordering::AcqRel);
        if was_replica {
            // ORDERING: publish.release-store
            self.promoted.store(true, Ordering::Release);
        }
        was_replica
    }

    /// The applier polls this to know when to detach.
    pub fn is_promoted(&self) -> bool {
        // ORDERING: publish.acquire-load
        self.promoted.load(Ordering::Acquire)
    }
}

/// A running server; dropping it without calling [`shutdown`] detaches
/// the threads (they stop when the process does).
///
/// [`shutdown`]: ServerHandle::shutdown
pub struct ServerHandle {
    ctx: Arc<ServerCtx>,
    local_addr: std::net::SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    applier: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// The shared context (stats, store) — used by tests and benches.
    pub fn ctx(&self) -> &Arc<ServerCtx> {
        &self.ctx
    }

    /// Requests a graceful drain and joins every thread. With
    /// persistence on, the drain ends by fsyncing the op log, writing a
    /// final snapshot, and leaving the clean-shutdown marker — the next
    /// start skips replay entirely.
    pub fn shutdown(mut self) {
        self.ctx.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.applier.take() {
            let _ = h.join();
        }
        // Every appender (workers, applier) is quiesced; seal the log.
        if let Err(e) = self.ctx.store.persist_shutdown() {
            eprintln!("cuckood: persistence shutdown failed: {e}");
        }
    }
}

/// The serving store plus, when `--data-dir` is set, the persistence
/// decorator for shutdown/replication wiring.
type BuiltStore = (Arc<dyn Store>, Option<Arc<PersistentStore>>);

/// Builds the store named by `config`: the engine, optionally wrapped in
/// the persistence decorator (which replays the data directory into the
/// engine before anything is served).
fn make_store(config: &Config) -> std::io::Result<BuiltStore> {
    let engine: Arc<dyn Store> = if config.no_evict {
        Arc::new(CuckooStore::new(config.capacity))
    } else {
        Arc::new(ClockStore::new(config.capacity))
    };
    let Some(dir) = &config.data_dir else {
        return Ok((engine, None));
    };
    let mut pcfg = PersistConfig::new(dir);
    pcfg.fsync_interval = Duration::from_millis(config.fsync_interval_ms);
    pcfg.snapshot_interval = Duration::from_secs(config.snapshot_interval_secs);
    let (store, recovered) =
        PersistentStore::open(engine, pcfg, Arc::new(PersistMetrics::new()))?;
    if recovered.replayed > 0 || !recovered.entries.is_empty() {
        eprintln!(
            "cuckood: warm restart from {}: {} entries, {} log records replayed ({})",
            dir.display(),
            recovered.entries.len(),
            recovered.replayed,
            if recovered.clean { "clean shutdown" } else { "crash recovery" },
        );
    }
    Ok((Arc::clone(&store) as Arc<dyn Store>, Some(store)))
}

/// Binds and spawns the accept and worker threads.
pub fn spawn(config: Config) -> std::io::Result<ServerHandle> {
    if config.replica_of.is_some() && config.data_dir.is_none() {
        return Err(std::io::Error::new(
            ErrorKind::InvalidInput,
            "--replica-of requires --data-dir (a replica is durable in its own right)",
        ));
    }
    let listener = TcpListener::bind((config.addr.as_str(), config.port))?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;

    let workers = if config.workers == 0 {
        thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        config.workers
    };

    let (store, persist) = make_store(&config)?;
    let ctx = Arc::new(ServerCtx {
        store,
        persist,
        stats: ServerStats::new(),
        workers,
        shutdown: AtomicBool::new(false),
        read_only: AtomicBool::new(config.replica_of.is_some()),
        promoted: AtomicBool::new(false),
        feeders: std::sync::atomic::AtomicU64::new(0),
    });

    let applier = config.replica_of.as_ref().map(|primary| {
        crate::repl::spawn_applier(primary.clone(), Arc::clone(&ctx))
    });

    let mut senders = Vec::with_capacity(workers);
    let mut handles = Vec::with_capacity(workers);
    for w in 0..workers {
        let (tx, rx) = mpssc_channel();
        senders.push(tx);
        let ctx = Arc::clone(&ctx);
        handles.push(
            thread::Builder::new()
                .name(format!("cuckood-worker-{w}"))
                .spawn(move || worker_loop(rx, ctx))
                .expect("spawn worker"),
        );
    }

    let accept_ctx = Arc::clone(&ctx);
    let accept = thread::Builder::new()
        .name("cuckood-accept".to_string())
        .spawn(move || accept_loop(listener, senders, accept_ctx))
        .expect("spawn acceptor");

    Ok(ServerHandle { ctx, local_addr, accept: Some(accept), workers: handles, applier })
}

// mpsc::channel with the type spelled once.
fn mpssc_channel() -> (mpsc::Sender<TcpStream>, mpsc::Receiver<TcpStream>) {
    mpsc::channel()
}

fn accept_loop(listener: TcpListener, senders: Vec<mpsc::Sender<TcpStream>>, ctx: Arc<ServerCtx>) {
    let mut next = 0usize;
    while !ctx.draining() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                ctx.stats.total_connections.fetch_add(1, Ordering::Relaxed);
                ctx.stats.curr_connections.fetch_add(1, Ordering::Relaxed);
                // Round-robin sharding; a worker that has exited (only
                // during shutdown) just drops the socket.
                let _ = senders[next % senders.len()].send(stream);
                next += 1;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(1));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
    // Dropping `senders` lets idle workers notice shutdown immediately.
}

fn worker_loop(rx: mpsc::Receiver<TcpStream>, ctx: Arc<ServerCtx>) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut drain_started: Option<Instant> = None;

    loop {
        // Adopt newly accepted connections.
        while let Ok(stream) = rx.try_recv() {
            conns.push(Conn::new(stream));
        }

        let draining = ctx.draining();
        if draining && drain_started.is_none() {
            drain_started = Some(Instant::now());
            for c in &mut conns {
                c.begin_drain(&ctx);
            }
        }

        let mut progress = false;
        conns.retain_mut(|c| match c.pump(&ctx) {
            PumpResult::Open { progress: p } => {
                progress |= p;
                true
            }
            PumpResult::Closed => {
                ctx.stats.curr_connections.fetch_sub(1, Ordering::Relaxed);
                progress = true;
                false
            }
            PumpResult::Replicate { lsn } => {
                // The socket leaves this worker's shard and becomes a
                // dedicated (blocking) feeder thread.
                ctx.stats.curr_connections.fetch_sub(1, Ordering::Relaxed);
                progress = true;
                match c.handoff_parts() {
                    Ok((stream, pending)) => {
                        crate::repl::spawn_feeder(stream, pending, lsn, Arc::clone(&ctx));
                    }
                    Err(e) => eprintln!("cuckood: replication handoff failed: {e}"),
                }
                false
            }
        });

        if draining {
            let expired = drain_started
                .map(|t| t.elapsed() > DRAIN_LIMIT)
                .unwrap_or(false);
            if conns.is_empty() || expired {
                // Anything still open past the limit closes hard.
                for _ in conns.drain(..) {
                    ctx.stats.curr_connections.fetch_sub(1, Ordering::Relaxed);
                }
                return;
            }
        }

        if !progress {
            thread::park_timeout(IDLE_PARK);
        }
    }
}
