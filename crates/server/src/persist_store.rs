//! [`PersistentStore`]: the durability decorator around a storage
//! engine.
//!
//! Wraps any [`Store`] and threads every acknowledged mutation through
//! the [`persist::Persister`] op log, in the order that makes fuzzy
//! snapshots and replica replay converge: **apply to the map first,
//! then append to the log, both under the key's write stripe**. Two
//! racing writers to the same key therefore log in the same order the
//! map observed them, while writers to different keys never contend on
//! more than the commit-queue mutex (the append itself never touches
//! the disk — group commit happens on the writer thread).
//!
//! Reads bypass the stripes entirely; they are exactly as concurrent as
//! the undecorated engine.

use std::io;
use std::sync::Arc;

use metrics::persist::PersistMetrics;
use persist::record::Op;
use persist::{Entry, PersistConfig, Persister, Recovered, WriteStripes};

use crate::proto::StoreVerb;
use crate::store::{now_secs, ItemOut, Store, StoreCmd, StoreOutcome, StoreStats};

/// Stripe count: enough dispersion that unrelated keys essentially never
/// share a lock, small enough that `flush_all`'s lock-all sweep is cheap.
const STRIPES: usize = 1024;

pub struct PersistentStore {
    inner: Arc<dyn Store>,
    persister: Persister,
    stripes: WriteStripes,
}

impl PersistentStore {
    /// Opens (or creates) the data directory, replays it into `inner`,
    /// and starts the background snapshot thread with a provider that
    /// scans `inner` (retrying until the displacement-race check says
    /// the pass was consistent).
    pub fn open(
        inner: Arc<dyn Store>,
        cfg: PersistConfig,
        metrics: Arc<PersistMetrics>,
    ) -> io::Result<(Arc<Self>, Recovered)> {
        let (persister, recovered) = Persister::open(cfg, metrics)?;
        let now = now_secs();
        for e in &recovered.entries {
            if e.expires_at != 0 && now >= e.expires_at {
                continue; // died while we were down; don't resurrect it
            }
            inner.restore(&e.key, e.flags, e.expires_at, e.cas, &e.value);
        }
        persister.start_snapshots(scan_provider(Arc::clone(&inner)));
        let store = Arc::new(PersistentStore {
            inner,
            persister,
            stripes: WriteStripes::new(STRIPES),
        });
        Ok((store, recovered))
    }

    pub fn persister(&self) -> &Persister {
        &self.persister
    }

    /// Applies one replicated record from the primary and relogs it into
    /// this node's own op log (a replica is durable in its own right —
    /// local LSNs, not the primary's). Same stripe discipline as the
    /// client write path, so replication and recovery stay convergent.
    pub fn apply_replicated(&self, op: &Op) {
        match op {
            Op::Set { key, flags, expires_at, cas, value } => {
                let _g = self.stripes.lock_key(key);
                self.inner.restore(key, *flags, *expires_at, *cas, value);
                self.persister.append(op);
            }
            Op::Delete { key } => {
                let _g = self.stripes.lock_key(key);
                self.inner.delete(key);
                self.persister.append(op);
            }
            Op::FlushAll => {
                let _g = self.stripes.lock_all();
                self.inner.flush_all();
                self.persister.append(op);
            }
            Op::Heartbeat { .. } => {}
        }
    }
}

/// Builds the snapshot thread's table scanner over `inner`.
fn scan_provider(inner: Arc<dyn Store>) -> persist::EntryProvider {
    Arc::new(move || {
        let mut entries = Vec::new();
        loop {
            entries.clear();
            if inner.scan_entries(now_secs(), &mut entries) {
                return entries;
            }
            // A concurrent displacement may have hidden an entry from
            // that pass; scan again.
            std::thread::yield_now();
        }
    })
}

impl Store for PersistentStore {
    fn get(&self, key: &[u8], now: u32) -> Option<ItemOut> {
        self.inner.get(key, now)
    }

    fn get_many(&self, keys: &[&[u8]], now: u32, out: &mut Vec<Option<ItemOut>>) {
        self.inner.get_many(keys, now, out)
    }

    fn store(
        &self,
        verb: StoreVerb,
        key: &[u8],
        flags: u32,
        exptime: u32,
        data: &[u8],
        now: u32,
    ) -> StoreOutcome {
        let _g = self.stripes.lock_key(key);
        let outcome = self.inner.store(verb, key, flags, exptime, data, now);
        if let StoreOutcome::Stored { cas, expires_at } = outcome {
            self.persister.append(&Op::Set {
                key: key.to_vec(),
                flags,
                expires_at,
                cas,
                value: data.to_vec(),
            });
        }
        outcome
    }

    fn store_many(&self, cmds: &[StoreCmd<'_>], now: u32, out: &mut Vec<StoreOutcome>) {
        // Deliberately the per-command loop, NOT the inner engine's
        // batched path: the durability contract requires each op to
        // apply to the map and append to the log under its key's write
        // stripe, so two racing writers of one key log in map order.
        // A batched inner write would need every key's stripe held
        // around one multi-append — serializing unrelated keys for no
        // recovery benefit. Burst coalescing therefore speeds up the
        // non-durable engines and leaves the logged path's ordering
        // exactly as audited.
        out.clear();
        out.extend(
            cmds.iter().map(|c| self.store(c.verb, c.key, c.flags, c.exptime, c.data, now)),
        );
    }

    fn delete(&self, key: &[u8]) -> bool {
        let _g = self.stripes.lock_key(key);
        let deleted = self.inner.delete(key);
        if deleted {
            self.persister.append(&Op::Delete { key: key.to_vec() });
        }
        deleted
    }

    fn flush_all(&self) -> u64 {
        // Order against *every* in-flight write at once: any store that
        // logged before this point is flushed; any that logs after it
        // reappears after replay — exactly what a replayer reconstructs.
        let _g = self.stripes.lock_all();
        let flushed = self.inner.flush_all();
        self.persister.append(&Op::FlushAll);
        flushed
    }

    fn restore(&self, key: &[u8], flags: u32, expires_at: u32, cas: u64, value: &[u8]) {
        // Warm-restart path only; the recovered state is already durable,
        // so nothing is logged.
        self.inner.restore(key, flags, expires_at, cas, value)
    }

    fn scan_entries(&self, now: u32, out: &mut Vec<Entry>) -> bool {
        self.inner.scan_entries(now, out)
    }

    fn persist_shutdown(&self) -> io::Result<()> {
        self.persister.shutdown()
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn engine(&self) -> &'static str {
        self.inner.engine()
    }

    fn metrics(&self, out: &mut Vec<metrics::Sample>) {
        self.inner.metrics(out);
        self.persister.metrics().samples(out);
    }

    fn metrics_reset(&self) {
        self.inner.metrics_reset();
        self.persister.metrics().reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::CuckooStore;
    use std::fs;
    use std::path::{Path, PathBuf};
    use std::time::Duration;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pstore-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn cfg(dir: &Path) -> PersistConfig {
        let mut c = PersistConfig::new(dir);
        c.fsync_interval = Duration::from_millis(1);
        c.snapshot_interval = Duration::ZERO;
        c
    }

    fn open(dir: &Path) -> (Arc<PersistentStore>, Recovered) {
        PersistentStore::open(
            Arc::new(CuckooStore::new(1024)),
            cfg(dir),
            Arc::new(PersistMetrics::new()),
        )
        .unwrap()
    }

    fn get_val(s: &PersistentStore, key: &[u8]) -> Option<Vec<u8>> {
        s.get(key, now_secs()).map(|i| i.data)
    }

    #[test]
    fn writes_survive_a_dirty_restart() {
        let d = tmpdir("dirty");
        {
            let (s, _) = open(&d);
            let now = now_secs();
            s.store(StoreVerb::Set, b"alpha", 7, 0, b"one", now);
            s.store(StoreVerb::Set, b"beta", 0, 0, b"two", now);
            s.delete(b"alpha");
            s.persister().sync();
            // Dropped without persist_shutdown: the kill -9 shape.
        }
        let (s, rec) = open(&d);
        assert!(!rec.clean);
        assert_eq!(get_val(&s, b"alpha"), None);
        assert_eq!(get_val(&s, b"beta"), Some(b"two".to_vec()));
        // cas allocation continues above every recovered value.
        let now = now_secs();
        let out = s.store(StoreVerb::Set, b"gamma", 0, 0, b"three", now);
        let StoreOutcome::Stored { cas, .. } = out else {
            panic!("store failed after restart")
        };
        let beta_cas = s.get(b"beta", now).unwrap().cas;
        assert!(cas > beta_cas, "fresh cas {cas} must exceed recovered {beta_cas}");
        drop(s);
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn clean_shutdown_then_snapshot_only_restart() {
        let d = tmpdir("clean");
        {
            let (s, _) = open(&d);
            s.store(StoreVerb::Set, b"k", 0, 0, b"v", now_secs());
            s.persist_shutdown().unwrap();
        }
        let (s, rec) = open(&d);
        assert!(rec.clean, "graceful drain must leave a clean marker");
        assert_eq!(rec.replayed, 0);
        assert_eq!(get_val(&s, b"k"), Some(b"v".to_vec()));
        drop(s);
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn flush_all_is_logged_and_replays_empty() {
        let d = tmpdir("flush");
        {
            let (s, _) = open(&d);
            let now = now_secs();
            s.store(StoreVerb::Set, b"a", 0, 0, b"1", now);
            s.store(StoreVerb::Set, b"b", 0, 0, b"2", now);
            assert_eq!(s.flush_all(), 2);
            s.store(StoreVerb::Set, b"c", 0, 0, b"3", now);
            s.persister().sync();
        }
        let (s, _) = open(&d);
        assert_eq!(s.stats().len, 1);
        assert_eq!(get_val(&s, b"c"), Some(b"3".to_vec()));
        drop(s);
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn apply_replicated_mirrors_and_relogs() {
        let d = tmpdir("applyrep");
        {
            let (s, _) = open(&d);
            s.apply_replicated(&Op::Set {
                key: b"r".to_vec(),
                flags: 3,
                expires_at: 0,
                cas: 42,
                value: b"from-primary".to_vec(),
            });
            assert_eq!(get_val(&s, b"r"), Some(b"from-primary".to_vec()));
            assert_eq!(s.get(b"r", now_secs()).unwrap().cas, 42);
            s.persister().sync();
        }
        // Relogged: the replica recovers the replicated write on its own.
        let (s, _) = open(&d);
        assert_eq!(get_val(&s, b"r"), Some(b"from-primary".to_vec()));
        drop(s);
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn snapshot_cycle_runs_against_the_live_engine() {
        let d = tmpdir("cycle");
        let (s, _) = open(&d);
        let now = now_secs();
        for i in 0..50 {
            s.store(StoreVerb::Set, format!("k{i}").as_bytes(), 0, 0, b"v", now);
        }
        s.persister().snapshot_now().unwrap();
        assert_eq!(s.persister().metrics().snapshots.get(), 1);
        assert_eq!(s.persister().metrics().snapshot_entries.get(), 50);
        drop(s);
        let (s, rec) = open(&d);
        assert_eq!(rec.replayed, 0, "snapshot covered every append");
        assert_eq!(s.stats().len, 50);
        drop(s);
        fs::remove_dir_all(&d).unwrap();
    }
}
