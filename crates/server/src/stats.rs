//! Server-side operation statistics: per-op-class latency histograms
//! (from `workload::latency`) and connection counters, rendered as
//! memcached `STAT` lines.

// ORDERING-FILE: stats.counter — every atomic here is a monotonic reporting counter.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use workload::latency::LatencyHistogram;

use crate::proto::{encode_stat, encode_stat_u64};
use crate::store::{Store, StoreStats};

/// Precomputed `lat_<class>_<quantile>_ns` stat names, so the stats path
/// never formats a name at request time (the hot-path budget covers the
/// stats command too: a monitoring loop polling `stats` every second
/// should not allocate per poll).
const LAT_NAMES: [[&str; 5]; 3] = [
    ["lat_get_mean_ns", "lat_get_p50_ns", "lat_get_p99_ns", "lat_get_p999_ns", "lat_get_max_ns"],
    [
        "lat_store_mean_ns",
        "lat_store_p50_ns",
        "lat_store_p99_ns",
        "lat_store_p999_ns",
        "lat_store_max_ns",
    ],
    [
        "lat_delete_mean_ns",
        "lat_delete_p50_ns",
        "lat_delete_p99_ns",
        "lat_delete_p999_ns",
        "lat_delete_max_ns",
    ],
];

/// Which histogram an operation's service time lands in.
#[derive(Debug, Clone, Copy)]
pub enum OpClass {
    Get,
    Store,
    Delete,
    Other,
}

/// Shared (lock-free) server counters; one instance per server, updated
/// by every worker.
pub struct ServerStats {
    started: Instant,
    pub get_latency: LatencyHistogram,
    pub store_latency: LatencyHistogram,
    pub delete_latency: LatencyHistogram,
    pub other_latency: LatencyHistogram,
    pub total_connections: AtomicU64,
    pub curr_connections: AtomicU64,
    pub protocol_errors: AtomicU64,
    /// Requests answered `SERVER_ERROR object too large for cache`.
    pub too_large: AtomicU64,
    /// Multi-key `get` requests served through the batched store path.
    pub multiget_batches: AtomicU64,
    /// Total keys carried by those batched requests (so
    /// `multiget_keys / multiget_batches` is the mean batch size).
    pub multiget_keys: AtomicU64,
    /// Pipelined storage-command bursts coalesced into one batched
    /// `store_many` call.
    pub multiset_batches: AtomicU64,
    /// Total commands carried by those bursts (so
    /// `multiset_keys / multiset_batches` is the mean burst size).
    pub multiset_keys: AtomicU64,
}

impl ServerStats {
    pub fn new() -> Self {
        ServerStats {
            started: Instant::now(),
            get_latency: LatencyHistogram::new(),
            store_latency: LatencyHistogram::new(),
            delete_latency: LatencyHistogram::new(),
            other_latency: LatencyHistogram::new(),
            total_connections: AtomicU64::new(0),
            curr_connections: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            too_large: AtomicU64::new(0),
            multiget_batches: AtomicU64::new(0),
            multiget_keys: AtomicU64::new(0),
            multiset_batches: AtomicU64::new(0),
            multiset_keys: AtomicU64::new(0),
        }
    }

    pub fn record(&self, class: OpClass, nanos: u64) {
        self.histogram(class).record(nanos);
    }

    /// Records one multi-key `get` request of `keys` keys.
    pub fn record_multiget(&self, keys: usize) {
        self.multiget_batches.fetch_add(1, Ordering::Relaxed);
        self.multiget_keys.fetch_add(keys as u64, Ordering::Relaxed);
    }

    /// Records one coalesced storage burst of `cmds` commands.
    pub fn record_multiset(&self, cmds: usize) {
        self.multiset_batches.fetch_add(1, Ordering::Relaxed);
        self.multiset_keys.fetch_add(cmds as u64, Ordering::Relaxed);
    }

    fn histogram(&self, class: OpClass) -> &LatencyHistogram {
        match class {
            OpClass::Get => &self.get_latency,
            OpClass::Store => &self.store_latency,
            OpClass::Delete => &self.delete_latency,
            OpClass::Other => &self.other_latency,
        }
    }

    /// Renders the full `stats` response body (without the trailing
    /// `END`): server identity, store counters, then latency tails.
    pub fn encode(&self, out: &mut Vec<u8>, store: &dyn Store, workers: usize) {
        let s: StoreStats = store.stats();
        encode_stat_u64(out, "pid", std::process::id() as u64);
        encode_stat_u64(out, "uptime", self.started.elapsed().as_secs());
        encode_stat_u64(out, "time", crate::store::now_secs() as u64);
        encode_stat(out, "version", crate::VERSION);
        encode_stat_u64(out, "pointer_size", usize::BITS as u64);
        encode_stat_u64(out, "threads", workers as u64);
        encode_stat(out, "engine", store.engine());
        encode_stat_u64(out, "curr_connections", self.curr_connections.load(Ordering::Relaxed));
        encode_stat_u64(out, "total_connections", self.total_connections.load(Ordering::Relaxed));
        encode_stat_u64(out, "curr_items", s.len as u64);
        encode_stat_u64(out, "max_items", s.capacity as u64);
        encode_stat_u64(out, "cmd_get", self.get_latency.len());
        encode_stat_u64(out, "cmd_set", self.store_latency.len());
        encode_stat_u64(out, "cmd_delete", self.delete_latency.len());
        encode_stat_u64(out, "get_hits", s.cache.hits);
        encode_stat_u64(out, "get_misses", s.cache.misses);
        encode_stat_u64(out, "evictions", s.cache.evictions);
        encode_stat_u64(out, "second_chances", s.cache.second_chances);
        encode_stat_u64(out, "expired", s.cache.expirations);
        encode_stat_u64(out, "total_inserts", s.cache.inserts);
        encode_stat_u64(out, "total_updates", s.cache.updates);
        encode_stat_u64(out, "total_deletes", s.cache.deletes);
        encode_stat_u64(out, "hash_collisions", s.hash_collisions);
        encode_stat_u64(out, "protocol_errors", self.protocol_errors.load(Ordering::Relaxed));
        encode_stat_u64(out, "object_too_large", self.too_large.load(Ordering::Relaxed));
        encode_stat_u64(out, "multiget_batches", self.multiget_batches.load(Ordering::Relaxed));
        encode_stat_u64(out, "multiget_keys", self.multiget_keys.load(Ordering::Relaxed));
        encode_stat_u64(out, "multiset_batches", self.multiset_batches.load(Ordering::Relaxed));
        encode_stat_u64(out, "multiset_keys", self.multiset_keys.load(Ordering::Relaxed));
        for (names, h) in LAT_NAMES.iter().zip([
            &self.get_latency,
            &self.store_latency,
            &self.delete_latency,
        ]) {
            if h.is_empty() {
                continue;
            }
            encode_stat_u64(out, names[0], h.mean().round() as u64);
            encode_stat_u64(out, names[1], h.percentile(50.0));
            encode_stat_u64(out, names[2], h.percentile(99.0));
            encode_stat_u64(out, names[3], h.percentile(99.9));
            encode_stat_u64(out, names[4], h.max());
        }
    }

    /// `stats reset`: zeroes the server-side resettable counters — the
    /// latency histograms and protocol/multiget tallies. Connection
    /// gauges and store-owned counters (hits, misses, evictions) are
    /// deliberately left alone, as memcached leaves item stats alone.
    pub fn reset(&self) {
        self.get_latency.reset();
        self.store_latency.reset();
        self.delete_latency.reset();
        self.other_latency.reset();
        self.protocol_errors.store(0, Ordering::Relaxed);
        self.too_large.store(0, Ordering::Relaxed);
        self.multiget_batches.store(0, Ordering::Relaxed);
        self.multiget_keys.store(0, Ordering::Relaxed);
        self.multiset_batches.store(0, Ordering::Relaxed);
        self.multiset_keys.store(0, Ordering::Relaxed);
    }
}

/// Assembles the complete observability sample set: the storage
/// backend's cuckoo families plus the process-global HTM rollup. Both
/// `stats cuckoo` (STAT lines) and `stats prometheus` (text exposition)
/// render from this one collection, so the two views can never drift.
pub fn collect_metric_samples(store: &dyn Store, out: &mut Vec<metrics::Sample>) {
    store.metrics(out);
    let h = htm::stats::global_snapshot();
    out.push(metrics::Sample::counter("htm_starts_total", h.starts));
    out.push(metrics::Sample::counter("htm_commits_total", h.commits));
    out.push(metrics::Sample::counter_with("htm_aborts_total", "code", "conflict", h.conflict_aborts));
    out.push(metrics::Sample::counter_with("htm_aborts_total", "code", "capacity", h.capacity_aborts));
    out.push(metrics::Sample::counter_with("htm_aborts_total", "code", "explicit", h.explicit_aborts));
    out.push(metrics::Sample::counter("htm_fallbacks_total", h.fallbacks));
}

impl Default for ServerStats {
    fn default() -> Self {
        Self::new()
    }
}
