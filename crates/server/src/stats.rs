//! Server-side operation statistics: per-op-class latency histograms
//! (from `workload::latency`) and connection counters, rendered as
//! memcached `STAT` lines.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use workload::latency::LatencyHistogram;

use crate::proto::encode_stat;
use crate::store::{Store, StoreStats};

/// Which histogram an operation's service time lands in.
#[derive(Debug, Clone, Copy)]
pub enum OpClass {
    Get,
    Store,
    Delete,
    Other,
}

/// Shared (lock-free) server counters; one instance per server, updated
/// by every worker.
pub struct ServerStats {
    started: Instant,
    pub get_latency: LatencyHistogram,
    pub store_latency: LatencyHistogram,
    pub delete_latency: LatencyHistogram,
    pub other_latency: LatencyHistogram,
    pub total_connections: AtomicU64,
    pub curr_connections: AtomicU64,
    pub protocol_errors: AtomicU64,
    /// Requests answered `SERVER_ERROR object too large for cache`.
    pub too_large: AtomicU64,
    /// Multi-key `get` requests served through the batched store path.
    pub multiget_batches: AtomicU64,
    /// Total keys carried by those batched requests (so
    /// `multiget_keys / multiget_batches` is the mean batch size).
    pub multiget_keys: AtomicU64,
}

impl ServerStats {
    pub fn new() -> Self {
        ServerStats {
            started: Instant::now(),
            get_latency: LatencyHistogram::new(),
            store_latency: LatencyHistogram::new(),
            delete_latency: LatencyHistogram::new(),
            other_latency: LatencyHistogram::new(),
            total_connections: AtomicU64::new(0),
            curr_connections: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            too_large: AtomicU64::new(0),
            multiget_batches: AtomicU64::new(0),
            multiget_keys: AtomicU64::new(0),
        }
    }

    pub fn record(&self, class: OpClass, nanos: u64) {
        self.histogram(class).record(nanos);
    }

    /// Records one multi-key `get` request of `keys` keys.
    pub fn record_multiget(&self, keys: usize) {
        self.multiget_batches.fetch_add(1, Ordering::Relaxed);
        self.multiget_keys.fetch_add(keys as u64, Ordering::Relaxed);
    }

    fn histogram(&self, class: OpClass) -> &LatencyHistogram {
        match class {
            OpClass::Get => &self.get_latency,
            OpClass::Store => &self.store_latency,
            OpClass::Delete => &self.delete_latency,
            OpClass::Other => &self.other_latency,
        }
    }

    /// Renders the full `stats` response body (without the trailing
    /// `END`): server identity, store counters, then latency tails.
    pub fn encode(&self, out: &mut Vec<u8>, store: &dyn Store, workers: usize) {
        let s: StoreStats = store.stats();
        encode_stat(out, "pid", std::process::id());
        encode_stat(out, "uptime", self.started.elapsed().as_secs());
        encode_stat(out, "time", crate::store::now_secs());
        encode_stat(out, "version", crate::VERSION);
        encode_stat(out, "pointer_size", usize::BITS);
        encode_stat(out, "threads", workers);
        encode_stat(out, "engine", store.engine());
        encode_stat(out, "curr_connections", self.curr_connections.load(Ordering::Relaxed));
        encode_stat(out, "total_connections", self.total_connections.load(Ordering::Relaxed));
        encode_stat(out, "curr_items", s.len);
        encode_stat(out, "max_items", s.capacity);
        encode_stat(out, "cmd_get", self.get_latency.len());
        encode_stat(out, "cmd_set", self.store_latency.len());
        encode_stat(out, "cmd_delete", self.delete_latency.len());
        encode_stat(out, "get_hits", s.cache.hits);
        encode_stat(out, "get_misses", s.cache.misses);
        encode_stat(out, "evictions", s.cache.evictions);
        encode_stat(out, "second_chances", s.cache.second_chances);
        encode_stat(out, "expired", s.cache.expirations);
        encode_stat(out, "total_inserts", s.cache.inserts);
        encode_stat(out, "total_updates", s.cache.updates);
        encode_stat(out, "total_deletes", s.cache.deletes);
        encode_stat(out, "hash_collisions", s.hash_collisions);
        encode_stat(out, "protocol_errors", self.protocol_errors.load(Ordering::Relaxed));
        encode_stat(out, "object_too_large", self.too_large.load(Ordering::Relaxed));
        encode_stat(out, "multiget_batches", self.multiget_batches.load(Ordering::Relaxed));
        encode_stat(out, "multiget_keys", self.multiget_keys.load(Ordering::Relaxed));
        for (name, h) in [
            ("get", &self.get_latency),
            ("store", &self.store_latency),
            ("delete", &self.delete_latency),
        ] {
            if h.is_empty() {
                continue;
            }
            encode_stat(out, &format!("lat_{name}_mean_ns"), format!("{:.0}", h.mean()));
            encode_stat(out, &format!("lat_{name}_p50_ns"), h.percentile(50.0));
            encode_stat(out, &format!("lat_{name}_p99_ns"), h.percentile(99.0));
            encode_stat(out, &format!("lat_{name}_p999_ns"), h.percentile(99.9));
            encode_stat(out, &format!("lat_{name}_max_ns"), h.max());
        }
    }
}

impl Default for ServerStats {
    fn default() -> Self {
        Self::new()
    }
}
