//! The multi-threaded measurement driver (paper §6, "Method and
//! Workloads").
//!
//! Two experiment shapes cover every figure:
//!
//! - [`run_fill`] — fill an empty table to a target occupancy with a
//!   random mix of inserts and lookups at a given ratio (100%/50%/10%
//!   insert in the paper), timing both the overall run and each
//!   load-factor window (e.g. 0.75–0.9, 0.9–0.95). Progress is tracked
//!   with a shared counter that threads update in batches — instant
//!   global counters are exactly what principle P1 bans from the hot
//!   path.
//! - [`run_lookup_only`] — fixed-occupancy lookup throughput (Figure 8).
//!
//! Each thread inserts a disjoint deterministic key stream
//! ([`crate::keygen`]); lookups target the thread's own already-inserted
//! prefix (90% hits) or a random absent key (10% misses).

// ORDERING-FILE: stats.counter — measurement counters read after the workers join.
use crate::adapter::{BenchValue, ConcurrentMap, PutResult};
use crate::keygen::{key_of, SplitMix64};
use crate::latency::LatencyHistogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Ceiling on how many inserts a thread accumulates before folding its
/// local progress into the shared counter (the actual batch adapts to the
/// run size so small tables still get fine-grained window timing).
const PROGRESS_BATCH_MAX: u64 = 1024;

/// A fill experiment description.
#[derive(Debug, Clone)]
pub struct FillSpec {
    /// Worker threads.
    pub threads: usize,
    /// Fraction of operations that are inserts (1.0, 0.5, 0.1 in the
    /// paper); the rest are lookups.
    pub insert_ratio: f64,
    /// Target occupancy as a fraction of the table's fill capacity.
    pub fill_to: f64,
    /// Load-factor windows to time, e.g. `[(0.0, 0.95), (0.75, 0.9),
    /// (0.9, 0.95)]`.
    pub windows: Vec<(f64, f64)>,
    /// Keys per [`ConcurrentMap::write_many`] call on the insert side.
    /// `0` or `1` measures the single-key `put` path; larger values
    /// drive inserts in bursts of this size through the table's batched
    /// write pipeline (lookups stay single-key), modeling a pipelining
    /// client's coalesced storage bursts.
    pub write_batch: usize,
}

impl FillSpec {
    /// The paper's standard configuration: fill to 95% with the given
    /// ratio, reporting overall plus the two high-occupancy windows.
    pub fn standard(threads: usize, insert_ratio: f64) -> Self {
        FillSpec {
            threads,
            insert_ratio,
            fill_to: 0.95,
            windows: vec![(0.0, 0.95), (0.75, 0.90), (0.90, 0.95)],
            write_batch: 1,
        }
    }
}

/// Results of a fill experiment.
#[derive(Debug, Clone)]
pub struct FillReport {
    /// Total operations performed (inserts + lookups).
    pub total_ops: u64,
    /// Total successful inserts.
    pub inserts: u64,
    /// Wall-clock for the whole fill.
    pub elapsed: Duration,
    /// Million operations per second overall.
    pub overall_mops: f64,
    /// Per-window million ops/sec, parallel to `spec.windows`.
    pub window_mops: Vec<f64>,
    /// Load factor actually reached.
    pub achieved_load: f64,
    /// `true` when some thread hit `TableFull` before its quota.
    pub hit_full: bool,
}

/// Fills `map` per `spec`, returning throughput measurements.
pub fn run_fill<V: BenchValue, M: ConcurrentMap<V> + ?Sized>(map: &M, spec: &FillSpec) -> FillReport {
    let capacity = map.fill_capacity();
    let target_inserts = ((capacity as f64) * spec.fill_to) as u64;
    let per_thread = target_inserts / spec.threads as u64;
    let total_inserts = per_thread * spec.threads as u64;

    // Window boundaries in insert counts; each records its entry/exit
    // timestamp (nanos from start) once via CAS.
    let boundaries: Vec<(u64, u64)> = spec
        .windows
        .iter()
        .map(|&(lo, hi)| {
            (
                (capacity as f64 * lo) as u64,
                ((capacity as f64 * hi) as u64).min(total_inserts),
            )
        })
        .collect();
    let lo_times: Vec<AtomicU64> = boundaries.iter().map(|_| AtomicU64::new(u64::MAX)).collect();
    let hi_times: Vec<AtomicU64> = boundaries.iter().map(|_| AtomicU64::new(u64::MAX)).collect();

    let batch_size = (per_thread / 128).clamp(16, PROGRESS_BATCH_MAX);
    let progress = AtomicU64::new(0);
    let total_ops = AtomicU64::new(0);
    let hit_full = std::sync::atomic::AtomicBool::new(false);
    let start = Instant::now();

    std::thread::scope(|s| {
        for t in 0..spec.threads as u64 {
            let progress = &progress;
            let total_ops = &total_ops;
            let hit_full = &hit_full;
            let lo_times = &lo_times;
            let hi_times = &hi_times;
            let boundaries = &boundaries;
            let map = &*map;
            let spec_ratio = spec.insert_ratio;
            let write_batch = spec.write_batch.max(1);
            s.spawn(move || {
                let batch_size = batch_size;
                let mut rng = SplitMix64::new(0xabcd ^ t);
                let mut inserted = 0u64;
                let mut ops = 0u64;
                let mut local_batch = 0u64;
                let mut pairs: Vec<(u64, V)> = Vec::with_capacity(write_batch);
                let mut results: Vec<PutResult> = Vec::with_capacity(write_batch);
                while inserted < per_thread {
                    let do_insert = spec_ratio >= 1.0
                        || (rng.next_u64() as f64 / u64::MAX as f64) < spec_ratio;
                    if do_insert && write_batch > 1 {
                        // Batch mode: a burst of the stream's next keys
                        // through the pipelined write path.
                        let n = write_batch.min((per_thread - inserted) as usize);
                        pairs.clear();
                        pairs.extend((0..n as u64).map(|j| {
                            let key = key_of(t, inserted + j);
                            (key, V::from_key(key))
                        }));
                        map.write_many(&pairs, &mut results);
                        let mut full = false;
                        for r in &results {
                            match r {
                                PutResult::Inserted => {
                                    inserted += 1;
                                    local_batch += 1;
                                }
                                PutResult::Exists => {
                                    // Disjoint streams: cannot happen.
                                    debug_assert!(false, "duplicate in disjoint stream");
                                    inserted += 1;
                                }
                                PutResult::Full => full = true,
                            }
                        }
                        // The shared `ops += 1` below covers one op of
                        // the burst; add the rest here.
                        ops += n as u64 - 1;
                        if full {
                            hit_full.store(true, Ordering::Relaxed);
                            break;
                        }
                    } else if do_insert {
                        let key = key_of(t, inserted);
                        match map.put(key, V::from_key(key)) {
                            PutResult::Inserted => {
                                inserted += 1;
                                local_batch += 1;
                            }
                            PutResult::Exists => {
                                // Disjoint streams: cannot happen.
                                debug_assert!(false, "duplicate in disjoint stream");
                                inserted += 1;
                            }
                            PutResult::Full => {
                                hit_full.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                    } else {
                        // 90% reads of own inserted prefix, 10% misses.
                        let key = if inserted > 0 && rng.below(10) != 0 {
                            key_of(t, rng.below(inserted))
                        } else {
                            key_of(t + 4096, rng.next_u64() & ((1 << 40) - 1))
                        };
                        std::hint::black_box(map.read(&key));
                    }
                    ops += 1;

                    if local_batch >= batch_size || inserted == per_thread {
                        let now =
                            // ORDERING: handoff.acqrel-rmw
                            progress.fetch_add(local_batch, Ordering::AcqRel) + local_batch;
                        local_batch = 0;
                        let stamp = start.elapsed().as_nanos() as u64;
                        for (w, &(lo, hi)) in boundaries.iter().enumerate() {
                            if now >= lo && lo_times[w].load(Ordering::Relaxed) == u64::MAX {
                                let _ = lo_times[w].compare_exchange(
                                    u64::MAX,
                                    stamp,
                                    // ORDERING: handoff.acqrel-rmw
                                    Ordering::AcqRel,
                                    Ordering::Relaxed,
                                );
                            }
                            if now >= hi && hi_times[w].load(Ordering::Relaxed) == u64::MAX {
                                let _ = hi_times[w].compare_exchange(
                                    u64::MAX,
                                    stamp,
                                    // ORDERING: handoff.acqrel-rmw
                                    Ordering::AcqRel,
                                    Ordering::Relaxed,
                                );
                            }
                        }
                    }
                }
                total_ops.fetch_add(ops, Ordering::Relaxed);
            });
        }
    });

    let elapsed = start.elapsed();
    let inserts = progress.load(Ordering::Relaxed);
    let ops = total_ops.load(Ordering::Relaxed);
    let overall_mops = ops as f64 / elapsed.as_secs_f64() / 1e6;

    let window_mops = boundaries
        .iter()
        .enumerate()
        .map(|(w, &(lo, hi))| {
            let t_lo = if lo == 0 {
                0
            } else {
                lo_times[w].load(Ordering::Relaxed)
            };
            let t_hi = hi_times[w].load(Ordering::Relaxed);
            if t_lo == u64::MAX || t_hi == u64::MAX || t_hi <= t_lo || hi <= lo {
                return f64::NAN;
            }
            // Ops in the window scale with inserts by the mix ratio.
            let window_inserts = (hi - lo) as f64;
            let window_ops = window_inserts / spec.insert_ratio.max(1e-9);
            window_ops / ((t_hi - t_lo) as f64 / 1e9) / 1e6
        })
        .collect();

    FillReport {
        total_ops: ops,
        inserts,
        elapsed,
        overall_mops,
        window_mops,
        achieved_load: inserts as f64 / capacity as f64,
        hit_full: hit_full.load(Ordering::Relaxed),
    }
}

/// An insert-latency fill experiment: insert-only, recording each
/// insert's wall-clock latency into load-factor-windowed histograms.
///
/// This is the eviction-policy A/B instrument: BFS and random-walk fills
/// have indistinguishable *throughput* until the table is nearly full,
/// and then differ precisely in how the insert tail stretches per load
/// window (see the `density` bench).
#[derive(Debug, Clone)]
pub struct FillLatencySpec {
    /// Worker threads.
    pub threads: usize,
    /// Target occupancy as a fraction of the table's fill capacity.
    pub fill_to: f64,
    /// Load-factor windows whose inserts are recorded separately, e.g.
    /// `[(0.0, 0.95), (0.95, 0.98), (0.98, 0.99)]`. Windows may overlap;
    /// an insert lands in every window containing the load factor at
    /// which it started.
    pub windows: Vec<(f64, f64)>,
}

/// Results of a [`run_fill_latency`] experiment.
#[derive(Debug)]
pub struct FillLatencyReport {
    /// Total successful inserts.
    pub inserts: u64,
    /// Load factor actually reached.
    pub achieved_load: f64,
    /// `true` when some thread hit `TableFull` before its quota.
    pub hit_full: bool,
    /// Every insert's latency.
    pub overall: LatencyHistogram,
    /// Per-window latency histograms, parallel to `spec.windows`.
    pub window_latencies: Vec<LatencyHistogram>,
}

/// Fills `map` insert-only per `spec`, timing every insert individually.
///
/// Window attribution uses the shared progress counter (batch-updated,
/// like [`run_fill`]) — load factors are accurate to one progress batch,
/// which is ≤1% of the table for the sizes the density bench uses.
pub fn run_fill_latency<V: BenchValue, M: ConcurrentMap<V> + ?Sized>(
    map: &M,
    spec: &FillLatencySpec,
) -> FillLatencyReport {
    let capacity = map.fill_capacity();
    let target_inserts = ((capacity as f64) * spec.fill_to) as u64;
    let per_thread = target_inserts / spec.threads as u64;

    let batch_size = (per_thread / 128).clamp(1, PROGRESS_BATCH_MAX.min(256));
    let progress = AtomicU64::new(0);
    let hit_full = std::sync::atomic::AtomicBool::new(false);
    let overall = LatencyHistogram::new();
    let window_latencies: Vec<LatencyHistogram> =
        spec.windows.iter().map(|_| LatencyHistogram::new()).collect();
    // Window bounds in insert counts, so the hot loop compares integers.
    let bounds: Vec<(u64, u64)> = spec
        .windows
        .iter()
        .map(|&(lo, hi)| ((capacity as f64 * lo) as u64, (capacity as f64 * hi) as u64))
        .collect();

    std::thread::scope(|s| {
        for t in 0..spec.threads as u64 {
            let progress = &progress;
            let hit_full = &hit_full;
            let overall = &overall;
            let window_latencies = &window_latencies;
            let bounds = &bounds;
            let map = &*map;
            s.spawn(move || {
                let mut inserted = 0u64;
                let mut local_batch = 0u64;
                let mut global = progress.load(Ordering::Relaxed);
                while inserted < per_thread {
                    let key = key_of(t, inserted);
                    let start = Instant::now();
                    let outcome = map.put(key, V::from_key(key));
                    let nanos = start.elapsed().as_nanos() as u64;
                    match outcome {
                        PutResult::Inserted => {}
                        PutResult::Exists => {
                            debug_assert!(false, "duplicate in disjoint stream");
                        }
                        PutResult::Full => {
                            hit_full.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                    overall.record(nanos);
                    for (w, &(lo, hi)) in bounds.iter().enumerate() {
                        if global >= lo && global < hi {
                            window_latencies[w].record(nanos);
                        }
                    }
                    inserted += 1;
                    local_batch += 1;
                    if local_batch >= batch_size || inserted == per_thread {
                        // ORDERING: handoff.acqrel-rmw
                        global = progress.fetch_add(local_batch, Ordering::AcqRel) + local_batch;
                        local_batch = 0;
                    } else {
                        global += 1;
                    }
                }
                if local_batch > 0 {
                    // Flush the tail batch (a `TableFull` break) so the
                    // achieved-load accounting stays exact.
                    // ORDERING: handoff.acqrel-rmw
                    progress.fetch_add(local_batch, Ordering::AcqRel);
                }
            });
        }
    });

    let inserts = progress.load(Ordering::Relaxed);
    FillLatencyReport {
        inserts,
        achieved_load: inserts as f64 / capacity as f64,
        hit_full: hit_full.load(Ordering::Relaxed),
        overall,
        window_latencies,
    }
}

/// A fixed-occupancy lookup experiment (Figure 8).
#[derive(Debug, Clone)]
pub struct LookupSpec {
    /// Worker threads.
    pub threads: usize,
    /// Lookups per thread.
    pub ops_per_thread: u64,
    /// Fraction of lookups that should miss.
    pub miss_ratio: f64,
    /// Keys per [`ConcurrentMap::read_many`] call. `0` or `1` measures
    /// the single-key `read` path; larger values exercise the batched
    /// (software-pipelined) engine with this group size.
    pub batch: usize,
}

impl LookupSpec {
    /// A single-key-path spec (`batch = 1`).
    pub fn single(threads: usize, ops_per_thread: u64, miss_ratio: f64) -> Self {
        LookupSpec { threads, ops_per_thread, miss_ratio, batch: 1 }
    }
}

/// Runs lookup-only throughput against a pre-filled table.
///
/// `filled` describes how the table was filled: `(threads_used,
/// inserts_per_thread)` from the fill phase, so lookups can target
/// existing keys.
pub fn run_lookup_only<V: BenchValue, M: ConcurrentMap<V> + ?Sized>(
    map: &M,
    spec: &LookupSpec,
    filled: (u64, u64),
) -> f64 {
    let (fill_threads, per_thread_keys) = filled;
    assert!(fill_threads > 0 && per_thread_keys > 0, "empty fill");
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..spec.threads as u64 {
            let map = &*map;
            let spec = spec.clone();
            s.spawn(move || {
                let mut rng = SplitMix64::new(0xfeed ^ t);
                let mut hits = 0u64;
                let next_key = |rng: &mut SplitMix64| {
                    let miss = (rng.next_u64() as f64 / u64::MAX as f64) < spec.miss_ratio;
                    if miss {
                        key_of(rng.below(fill_threads) + 4096, rng.next_u64() & ((1 << 40) - 1))
                    } else {
                        key_of(rng.below(fill_threads), rng.below(per_thread_keys))
                    }
                };
                if spec.batch > 1 {
                    let batch = spec.batch as u64;
                    let mut keys = vec![0u64; spec.batch];
                    let mut results = Vec::with_capacity(spec.batch);
                    let mut remaining = spec.ops_per_thread;
                    while remaining > 0 {
                        let n = remaining.min(batch) as usize;
                        for k in keys[..n].iter_mut() {
                            *k = next_key(&mut rng);
                        }
                        map.read_many(&keys[..n], &mut results);
                        hits += std::hint::black_box(&results)
                            .iter()
                            .filter(|r| r.is_some())
                            .count() as u64;
                        remaining -= n as u64;
                    }
                } else {
                    for _ in 0..spec.ops_per_thread {
                        let key = next_key(&mut rng);
                        if std::hint::black_box(map.read(&key)).is_some() {
                            hits += 1;
                        }
                    }
                }
                std::hint::black_box(hits);
            });
        }
    });
    let elapsed = start.elapsed();
    (spec.threads as u64 * spec.ops_per_thread) as f64 / elapsed.as_secs_f64() / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuckoo::OptimisticCuckooMap;

    #[test]
    fn fill_reaches_target_occupancy() {
        let map: OptimisticCuckooMap<u64, u64, 8> = OptimisticCuckooMap::with_capacity(1 << 12);
        let spec = FillSpec::standard(2, 1.0);
        let report = run_fill(&map, &spec);
        assert!(!report.hit_full);
        assert!(report.achieved_load > 0.94, "{}", report.achieved_load);
        assert!(report.overall_mops > 0.0);
        assert_eq!(report.inserts as usize, ConcurrentMap::<u64>::items(&map));
        // Windows are ordered sub-spans: all should have resolved.
        for (w, m) in report.window_mops.iter().enumerate() {
            assert!(m.is_finite(), "window {w} unresolved: {m}");
        }
    }

    #[test]
    fn mixed_ratio_performs_lookups_too() {
        let map: OptimisticCuckooMap<u64, u64, 8> = OptimisticCuckooMap::with_capacity(1 << 12);
        let spec = FillSpec {
            write_batch: 1,
            threads: 2,
            insert_ratio: 0.5,
            fill_to: 0.5,
            windows: vec![(0.0, 0.5)],
        };
        let report = run_fill(&map, &spec);
        // ~2x as many ops as inserts at a 50% ratio.
        let ratio = report.total_ops as f64 / report.inserts as f64;
        assert!(ratio > 1.5 && ratio < 3.0, "ratio {ratio}");
    }

    #[test]
    fn fill_latency_windows_accumulate() {
        let map: OptimisticCuckooMap<u64, u64, 8> = OptimisticCuckooMap::with_capacity(1 << 12);
        let spec = FillLatencySpec {
            threads: 2,
            fill_to: 0.9,
            windows: vec![(0.0, 0.5), (0.5, 0.9)],
        };
        let report = run_fill_latency(&map, &spec);
        assert!(!report.hit_full);
        assert!(report.achieved_load > 0.89, "{}", report.achieved_load);
        assert_eq!(report.overall.len(), report.inserts);
        for (w, h) in report.window_latencies.iter().enumerate() {
            assert!(!h.is_empty(), "window {w} collected no samples");
            assert!(h.percentile(99.9) >= h.percentile(50.0));
        }
        let windowed: u64 = report.window_latencies.iter().map(|h| h.len()).sum();
        assert!(windowed <= report.overall.len());
    }

    #[test]
    fn fill_latency_drives_random_walk_tables_too() {
        // The A/B instrument must work against a non-default policy; the
        // walk planner sustains the same 90% fill BFS does.
        let map: OptimisticCuckooMap<u64, u64, 8> =
            cuckoo::OptimisticBuilder::new(1 << 12)
                .eviction(cuckoo::EvictionPolicy::RandomWalk { max_kicks: 500 })
                .build();
        let spec = FillLatencySpec { threads: 2, fill_to: 0.9, windows: vec![] };
        let report = run_fill_latency(&map, &spec);
        assert!(!report.hit_full);
        assert!(report.achieved_load > 0.89, "{}", report.achieved_load);
        assert!(ConcurrentMap::<u64>::label(&map).contains("walk500"));
    }

    #[test]
    fn lookup_only_throughput_is_positive() {
        let map: OptimisticCuckooMap<u64, u64, 8> = OptimisticCuckooMap::with_capacity(1 << 12);
        let fill = FillSpec {
            write_batch: 1,
            threads: 2,
            insert_ratio: 1.0,
            fill_to: 0.9,
            windows: vec![],
        };
        let report = run_fill(&map, &fill);
        let per_thread = report.inserts / 2;
        let mops = run_lookup_only(
            &map,
            &LookupSpec::single(2, 20_000, 0.1),
            (2, per_thread),
        );
        assert!(mops > 0.0);
    }

    #[test]
    fn batched_fill_reaches_target_load() {
        // The write-batch knob drives inserts through `write_many` in
        // bursts; the fill must land exactly like the single-key path.
        for write_batch in [4, 8, 16] {
            let map: OptimisticCuckooMap<u64, u64, 8> = OptimisticCuckooMap::with_capacity(1 << 12);
            let spec = FillSpec {
                write_batch,
                threads: 2,
                insert_ratio: 1.0,
                fill_to: 0.9,
                windows: vec![(0.0, 0.9)],
            };
            let report = run_fill(&map, &spec);
            assert!(!report.hit_full, "batch {write_batch}");
            assert!(report.achieved_load > 0.89, "batch {write_batch}: {}", report.achieved_load);
            assert_eq!(report.inserts as usize, ConcurrentMap::<u64>::items(&map));
            // Every key of every thread's stream is present.
            let per_thread = report.inserts / 2;
            for t in 0..2u64 {
                for i in (0..per_thread).step_by(97) {
                    let key = key_of(t, i);
                    assert_eq!(ConcurrentMap::<u64>::read(&map, &key), Some(u64::from_key(key)));
                }
            }
        }
    }

    #[test]
    fn batched_lookup_throughput_is_positive() {
        let map: OptimisticCuckooMap<u64, u64, 8> = OptimisticCuckooMap::with_capacity(1 << 12);
        let fill = FillSpec {
            write_batch: 1,
            threads: 2,
            insert_ratio: 1.0,
            fill_to: 0.9,
            windows: vec![],
        };
        let report = run_fill(&map, &fill);
        let per_thread = report.inserts / 2;
        for batch in [4, 8, 32] {
            let mops = run_lookup_only(
                &map,
                &LookupSpec {
                    threads: 2,
                    ops_per_thread: 20_000,
                    miss_ratio: 0.1,
                    batch,
                },
                (2, per_thread),
            );
            assert!(mops > 0.0, "batch {batch}");
        }
    }
}
