//! Zipf-distributed key sampling for skewed workloads.
//!
//! Key-value caches see heavily skewed key popularity; the classic model
//! is the Zipf distribution (`P(k) ∝ 1 / k^s`). This implements the
//! standard rejection-inversion sampler (Gray et al., "Quickly generating
//! billion-record synthetic databases"): O(1) per sample, no per-element
//! tables, any `n` and any exponent `s > 0, s ≠ 1` (the harmonic case is
//! handled by a nearby exponent).

use crate::keygen::SplitMix64;

/// A Zipf(n, s) sampler over ranks `0..n` (rank 0 is the hottest key).
#[derive(Debug, Clone)]
pub struct Zipf {
    n: f64,
    s: f64,
    /// Precomputed integral terms.
    h_x1: f64,
    h_n: f64,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `s <= 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "empty universe");
        assert!(s > 0.0, "exponent must be positive");
        // Nudge the harmonic singularity.
        let s = if (s - 1.0).abs() < 1e-9 { 1.0 + 1e-9 } else { s };
        let n = n as f64;
        let h = |x: f64| (x.powf(1.0 - s) - 1.0) / (1.0 - s);
        Zipf {
            n,
            s,
            h_x1: h(1.5) - 1.0,
            h_n: h(n + 0.5),
        }
    }

    #[inline]
    fn h(&self, x: f64) -> f64 {
        (x.powf(1.0 - self.s) - 1.0) / (1.0 - self.s)
    }

    #[inline]
    fn h_inv(&self, x: f64) -> f64 {
        (1.0 + x * (1.0 - self.s)).powf(1.0 / (1.0 - self.s))
    }

    /// Draws a rank in `0..n` (0 = most popular).
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        loop {
            let u = self.h_x1 + (rng.next_u64() as f64 / u64::MAX as f64) * (self.h_n - self.h_x1);
            let x = self.h_inv(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n);
            if u >= self.h(k + 0.5) - k.powf(-self.s) {
                return (k as u64) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(n: u64, s: f64, samples: usize) -> Vec<u64> {
        let z = Zipf::new(n, s);
        let mut rng = SplitMix64::new(99);
        let mut hist = vec![0u64; n as usize];
        for _ in 0..samples {
            hist[z.sample(&mut rng) as usize] += 1;
        }
        hist
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(100, 0.99);
        let mut rng = SplitMix64::new(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn rank_zero_is_hottest_and_frequencies_decay() {
        let hist = histogram(50, 1.0, 200_000);
        assert!(hist[0] > hist[1]);
        assert!(hist[1] > hist[5]);
        assert!(hist[5] > hist[20]);
        // Head heaviness: rank 0 of Zipf(50, ~1) carries ~22% of mass.
        let total: u64 = hist.iter().sum();
        let head = hist[0] as f64 / total as f64;
        assert!((0.15..0.30).contains(&head), "head mass {head}");
    }

    #[test]
    fn frequency_ratios_follow_power_law() {
        // P(1)/P(2) should be ≈ 2^s.
        for s in [0.8f64, 1.0, 1.3] {
            let hist = histogram(1000, s, 400_000);
            let ratio = hist[0] as f64 / hist[1] as f64;
            let expect = 2f64.powf(s);
            assert!(
                (ratio / expect - 1.0).abs() < 0.15,
                "s={s}: ratio {ratio} vs expected {expect}"
            );
        }
    }

    #[test]
    fn small_exponent_approaches_uniform() {
        let hist = histogram(20, 0.05, 200_000);
        let max = *hist.iter().max().unwrap() as f64;
        let min = *hist.iter().min().unwrap() as f64;
        assert!(max / min < 1.5, "max {max} min {min}");
    }

    #[test]
    #[should_panic(expected = "empty universe")]
    fn rejects_empty_universe() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let z = Zipf::new(1000, 1.1);
        let a: Vec<u64> = {
            let mut rng = SplitMix64::new(5);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = SplitMix64::new(5);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
