//! Deterministic per-thread key streams.
//!
//! Each benchmark thread inserts a disjoint stream of keys: thread `t`'s
//! `i`-th key is a SplitMix64 scramble of `(t << 40) | i`, so streams are
//! unique across threads, reproducible across runs, and uniformly
//! distributed across buckets (the scramble prevents the hash from
//! seeing sequential structure even with a weak hasher).

/// SplitMix64 state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next pseudo-random 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (bound > 0).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiplicative range reduction (Lemire); bias is negligible for
        // benchmark purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// The `i`-th unique key of thread `t` (deterministic, collision-free
/// across threads for `i < 2^40`, `t < 2^24`).
#[inline]
pub fn key_of(thread: u64, i: u64) -> u64 {
    debug_assert!(i < 1 << 40);
    scramble((thread << 40) | i)
}

/// Invertible 64-bit scramble (SplitMix64 finalizer).
#[inline]
fn scramble(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_disjoint_and_deterministic() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for t in 0..4u64 {
            for i in 0..10_000u64 {
                assert!(seen.insert(key_of(t, i)), "duplicate key t={t} i={i}");
            }
        }
        assert_eq!(key_of(2, 77), key_of(2, 77));
    }

    #[test]
    fn splitmix_reproducible_and_spread() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut rng = SplitMix64::new(7);
        let mut hist = [0u32; 16];
        for _ in 0..16_000 {
            hist[rng.below(16) as usize] += 1;
        }
        assert!(hist.iter().all(|&c| c > 700), "{hist:?}");
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SplitMix64::new(1);
        for bound in [1u64, 2, 3, 17, 1000] {
            for _ in 0..1000 {
                assert!(rng.below(bound) < bound);
            }
        }
    }
}
