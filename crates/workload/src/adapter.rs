//! The uniform table interface the benchmark driver runs against.
//!
//! Every table in the evaluation — the three cuckoo flavors, the general
//! map, and the baselines — implements [`ConcurrentMap`] so a single
//! driver produces comparable numbers for all of them (one adapter per
//! paper configuration).

use baselines::{ChainingMap, ConcurrentDense, ConcurrentNodeChain};
use cuckoo::{CuckooMap, ElidedCuckooMap, MemC3Cuckoo, OptimisticCuckooMap};
use htm::StatsSnapshot;

/// What an insert did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutResult {
    /// The key was inserted.
    Inserted,
    /// The key already exists.
    Exists,
    /// The table refused for capacity reasons.
    Full,
}

/// Benchmark value types: synthesized from the key so correctness spot
/// checks are possible without side tables.
pub trait BenchValue: Copy + Send + Sync + 'static {
    /// Derives the canonical value for `key`.
    fn from_key(key: u64) -> Self;
}

impl BenchValue for u64 {
    #[inline]
    fn from_key(key: u64) -> Self {
        key.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1
    }
}

impl<const N: usize> BenchValue for [u8; N] {
    #[inline]
    fn from_key(key: u64) -> Self {
        let mut v = [0u8; N];
        let bytes = key.to_le_bytes();
        let mut i = 0;
        while i < N {
            v[i] = bytes[i % 8] ^ (i as u8);
            i += 1;
        }
        v
    }
}

/// A concurrent `u64 → V` table under benchmark.
pub trait ConcurrentMap<V: BenchValue>: Sync {
    /// Inserts `key → val`.
    fn put(&self, key: u64, val: V) -> PutResult;
    /// Looks up `key`.
    fn read(&self, key: &u64) -> Option<V>;
    /// Batched lookup: one result per key, in order (`None` = miss).
    /// The default loops [`read`](Self::read); tables with a pipelined
    /// multi-key path override it so the driver's batch mode measures
    /// the real engine.
    fn read_many(&self, keys: &[u64], out: &mut Vec<Option<V>>) {
        out.clear();
        out.extend(keys.iter().map(|k| self.read(k)));
    }
    /// Batched insert: one result per pair, in order, equivalent to
    /// calling [`put`](Self::put) per pair (duplicates within a batch
    /// included). The default loops `put`; tables with a pipelined
    /// multi-key write path override it so the driver's write-batch
    /// mode measures the real engine.
    fn write_many(&self, pairs: &[(u64, V)], out: &mut Vec<PutResult>) {
        out.clear();
        out.extend(pairs.iter().map(|(k, v)| self.put(*k, *v)));
    }
    /// Removes `key`, reporting whether it was present.
    fn del(&self, key: &u64) -> bool;
    /// Current item count.
    fn items(&self) -> usize;
    /// Capacity the fill driver targets (slots for fixed tables; the
    /// pre-sized capacity for growable ones).
    fn fill_capacity(&self) -> usize;
    /// Bytes of memory in use.
    fn mem_bytes(&self) -> usize;
    /// Short display name for reports.
    fn label(&self) -> String;
    /// Transactional statistics, when running elided.
    fn htm_stats(&self) -> Option<StatsSnapshot> {
        None
    }
    /// Appends the table's observability samples (lock contention, BFS
    /// histograms, read retries...), for tables that keep them. The
    /// driver snapshots these around a measured phase so reports carry
    /// counter deltas. Default: no samples.
    fn metric_samples(&self, out: &mut Vec<metrics::Sample>) {
        let _ = out;
    }
}

/// Label suffix describing a non-default eviction policy, so A/B reports
/// distinguish the planner variants at a glance.
fn eviction_suffix(policy: cuckoo::EvictionPolicy) -> String {
    match policy {
        cuckoo::EvictionPolicy::Bfs => String::new(),
        cuckoo::EvictionPolicy::RandomWalk { max_kicks } => format!("+walk{max_kicks}"),
        cuckoo::EvictionPolicy::Hybrid { bfs_slots, max_kicks } => {
            format!("+hybrid{bfs_slots}/{max_kicks}")
        }
    }
}

fn put_from_cuckoo(r: Result<(), cuckoo::InsertError>) -> PutResult {
    match r {
        Ok(()) => PutResult::Inserted,
        Err(cuckoo::InsertError::KeyExists) => PutResult::Exists,
        Err(cuckoo::InsertError::TableFull) => PutResult::Full,
    }
}

fn put_from_baseline(r: Result<(), baselines::InsertError>) -> PutResult {
    match r {
        Ok(()) => PutResult::Inserted,
        Err(baselines::InsertError::KeyExists) => PutResult::Exists,
        Err(baselines::InsertError::TableFull) => PutResult::Full,
    }
}

impl<V: BenchValue + cuckoo::Plain, const B: usize> ConcurrentMap<V>
    for OptimisticCuckooMap<u64, V, B>
{
    fn put(&self, key: u64, val: V) -> PutResult {
        put_from_cuckoo(self.insert(key, val))
    }

    fn read(&self, key: &u64) -> Option<V> {
        self.get(key)
    }

    fn read_many(&self, keys: &[u64], out: &mut Vec<Option<V>>) {
        self.get_many_into(keys, out);
    }

    fn write_many(&self, pairs: &[(u64, V)], out: &mut Vec<PutResult>) {
        out.clear();
        out.extend(self.insert_many(pairs).into_iter().map(put_from_cuckoo));
    }

    fn del(&self, key: &u64) -> bool {
        self.remove(key).is_some()
    }

    fn items(&self) -> usize {
        self.len()
    }

    fn fill_capacity(&self) -> usize {
        self.capacity()
    }

    fn mem_bytes(&self) -> usize {
        self.memory_bytes()
    }

    fn label(&self) -> String {
        format!("cuckoo+ FG {B}-way{}", eviction_suffix(self.eviction()))
    }

    fn metric_samples(&self, out: &mut Vec<metrics::Sample>) {
        OptimisticCuckooMap::metric_samples(self, out);
    }
}

impl<V: BenchValue + cuckoo::Plain, const B: usize> ConcurrentMap<V>
    for ElidedCuckooMap<u64, V, B>
{
    fn put(&self, key: u64, val: V) -> PutResult {
        put_from_cuckoo(self.insert(key, val))
    }

    fn read(&self, key: &u64) -> Option<V> {
        self.get(key)
    }

    fn del(&self, key: &u64) -> bool {
        self.remove(key).is_some()
    }

    fn items(&self) -> usize {
        self.len()
    }

    fn fill_capacity(&self) -> usize {
        self.capacity()
    }

    fn mem_bytes(&self) -> usize {
        self.memory_bytes()
    }

    fn label(&self) -> String {
        format!("cuckoo+ TSX {B}-way")
    }

    fn htm_stats(&self) -> Option<StatsSnapshot> {
        ElidedCuckooMap::htm_stats(self)
    }
}

impl<V: BenchValue + cuckoo::Plain, const B: usize> ConcurrentMap<V> for MemC3Cuckoo<u64, V, B> {
    fn put(&self, key: u64, val: V) -> PutResult {
        put_from_cuckoo(self.insert(key, val))
    }

    fn read(&self, key: &u64) -> Option<V> {
        self.get(key)
    }

    fn del(&self, key: &u64) -> bool {
        self.remove(key).is_some()
    }

    fn items(&self) -> usize {
        self.len()
    }

    fn fill_capacity(&self) -> usize {
        self.capacity()
    }

    fn mem_bytes(&self) -> usize {
        self.memory_bytes()
    }

    fn label(&self) -> String {
        let c = self.config();
        let mut parts = vec!["memc3".to_string()];
        if c.lock_later {
            parts.push("lock-later".into());
        }
        parts.push(
            match c.search {
                cuckoo::SearchKind::Dfs => "dfs".to_string(),
                cuckoo::SearchKind::Bfs => format!("bfs{}", eviction_suffix(c.eviction)),
            },
        );
        if c.prefetch {
            parts.push("prefetch".into());
        }
        parts.push(
            match c.lock {
                cuckoo::WriterLockKind::Global => "global",
                cuckoo::WriterLockKind::ElidedGlibc => "tsx-glibc",
                cuckoo::WriterLockKind::ElidedOptimized => "tsx*",
            }
            .into(),
        );
        parts.join("+")
    }

    fn htm_stats(&self) -> Option<StatsSnapshot> {
        MemC3Cuckoo::htm_stats(self)
    }

    fn metric_samples(&self, out: &mut Vec<metrics::Sample>) {
        MemC3Cuckoo::metric_samples(self, out);
    }
}

impl<V: BenchValue, const B: usize> ConcurrentMap<V> for CuckooMap<u64, V, B> {
    fn put(&self, key: u64, val: V) -> PutResult {
        put_from_cuckoo(self.insert(key, val))
    }

    fn read(&self, key: &u64) -> Option<V> {
        self.get(key)
    }

    fn read_many(&self, keys: &[u64], out: &mut Vec<Option<V>>) {
        self.get_many_into(keys, out);
    }

    fn write_many(&self, pairs: &[(u64, V)], out: &mut Vec<PutResult>) {
        out.clear();
        out.extend(self.insert_many(pairs.to_vec()).into_iter().map(put_from_cuckoo));
    }

    fn del(&self, key: &u64) -> bool {
        self.remove(key).is_some()
    }

    fn items(&self) -> usize {
        self.len()
    }

    fn fill_capacity(&self) -> usize {
        self.capacity()
    }

    fn mem_bytes(&self) -> usize {
        self.memory_bytes()
    }

    fn label(&self) -> String {
        format!("libcuckoo-style map {B}-way")
    }

    fn metric_samples(&self, out: &mut Vec<metrics::Sample>) {
        CuckooMap::metric_samples(self, out);
    }
}

impl<V: BenchValue> ConcurrentMap<V> for ChainingMap<u64, V> {
    fn put(&self, key: u64, val: V) -> PutResult {
        put_from_baseline(self.insert(key, val))
    }

    fn read(&self, key: &u64) -> Option<V> {
        self.get(key)
    }

    fn del(&self, key: &u64) -> bool {
        self.remove(key).is_some()
    }

    fn items(&self) -> usize {
        self.len()
    }

    fn fill_capacity(&self) -> usize {
        // Growable; the driver targets the pre-sized bucket count.
        self.buckets()
    }

    fn mem_bytes(&self) -> usize {
        self.memory_bytes()
    }

    fn label(&self) -> String {
        "chaining (TBB-style)".into()
    }
}

impl<V: BenchValue + htm::Plain> ConcurrentMap<V> for ConcurrentDense<u64, V> {
    fn put(&self, key: u64, val: V) -> PutResult {
        put_from_baseline(self.insert(key, val))
    }

    fn read(&self, key: &u64) -> Option<V> {
        self.get(key)
    }

    fn del(&self, key: &u64) -> bool {
        self.remove(key).is_some()
    }

    fn items(&self) -> usize {
        self.len()
    }

    fn fill_capacity(&self) -> usize {
        self.capacity()
    }

    fn mem_bytes(&self) -> usize {
        self.memory_bytes()
    }

    fn label(&self) -> String {
        match self.htm_stats() {
            Some(_) => "dense (global+TSX)".into(),
            None => "dense (global lock)".into(),
        }
    }

    fn htm_stats(&self) -> Option<StatsSnapshot> {
        ConcurrentDense::htm_stats(self)
    }
}

impl<V: BenchValue + htm::Plain> ConcurrentMap<V> for ConcurrentNodeChain<u64, V> {
    fn put(&self, key: u64, val: V) -> PutResult {
        put_from_baseline(self.insert(key, val))
    }

    fn read(&self, key: &u64) -> Option<V> {
        self.get(key)
    }

    fn del(&self, key: &u64) -> bool {
        self.remove(key).is_some()
    }

    fn items(&self) -> usize {
        self.len()
    }

    fn fill_capacity(&self) -> usize {
        self.capacity()
    }

    fn mem_bytes(&self) -> usize {
        self.memory_bytes()
    }

    fn label(&self) -> String {
        match self.htm_stats() {
            Some(_) => "node-chain (global+TSX)".into(),
            None => "node-chain (global lock)".into(),
        }
    }

    fn htm_stats(&self) -> Option<StatsSnapshot> {
        ConcurrentNodeChain::htm_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<V: BenchValue + PartialEq + std::fmt::Debug>(m: &dyn ConcurrentMap<V>) {
        for k in 0..200u64 {
            assert_eq!(m.put(k, V::from_key(k)), PutResult::Inserted, "{}", m.label());
        }
        assert_eq!(m.put(0, V::from_key(0)), PutResult::Exists);
        for k in 0..200u64 {
            assert_eq!(m.read(&k), Some(V::from_key(k)), "{}", m.label());
        }
        assert_eq!(m.read(&9999), None);
        // Batched read (pipelined override or default loop) agrees with
        // single reads, including misses and duplicates.
        let keys: Vec<u64> = (0..20).map(|i| if i % 4 == 3 { 9_999 + i } else { i }).collect();
        let mut many = Vec::new();
        m.read_many(&keys, &mut many);
        assert_eq!(many.len(), keys.len());
        for (k, got) in keys.iter().zip(&many) {
            assert_eq!(*got, m.read(k), "{} key {k}", m.label());
        }
        // Batched write (pipelined override or default loop) matches the
        // per-key loop, duplicates included.
        let pairs: Vec<(u64, V)> =
            (200..220).map(|k| (k, V::from_key(k))).chain([(5, V::from_key(5))]).collect();
        let mut results = Vec::new();
        m.write_many(&pairs, &mut results);
        assert_eq!(results.len(), pairs.len());
        for (i, r) in results[..20].iter().enumerate() {
            assert_eq!(*r, PutResult::Inserted, "{} pair {i}", m.label());
        }
        assert_eq!(results[20], PutResult::Exists, "{}", m.label());
        for k in 200..220u64 {
            assert_eq!(m.read(&k), Some(V::from_key(k)), "{} key {k}", m.label());
        }
        assert!(m.del(&0));
        assert!(!m.del(&0));
        assert_eq!(m.items(), 219);
        assert!(m.mem_bytes() > 0);
        assert!(m.fill_capacity() > 0);
    }

    #[test]
    fn every_adapter_is_exercisable() {
        use baselines::locked::{LockKind, Locked};
        use baselines::{dense::DenseTable, node_chain::NodeChainTable};
        use std::collections::hash_map::RandomState;

        exercise::<u64>(&OptimisticCuckooMap::<u64, u64, 8>::with_capacity(4096));
        exercise::<u64>(&ElidedCuckooMap::<u64, u64, 8>::with_capacity(4096));
        exercise::<u64>(&MemC3Cuckoo::<u64, u64, 4>::with_capacity(
            4096,
            cuckoo::MemC3Config::baseline(),
        ));
        exercise::<u64>(&CuckooMap::<u64, u64, 8>::with_capacity(4096));
        exercise::<u64>(&ChainingMap::with_capacity(4096));
        exercise::<u64>(&Locked::new(
            DenseTable::with_capacity_and_hasher(4096, RandomState::new()),
            LockKind::Global,
        ));
        exercise::<u64>(&Locked::new(
            NodeChainTable::with_capacity_and_hasher(4096, RandomState::new()),
            LockKind::ElidedOptimized,
        ));
    }

    #[test]
    fn bench_values_derive_deterministically() {
        assert_eq!(u64::from_key(5), u64::from_key(5));
        assert_ne!(u64::from_key(5), u64::from_key(6));
        let a: [u8; 32] = BenchValue::from_key(7);
        let b: [u8; 32] = BenchValue::from_key(7);
        let c: [u8; 32] = BenchValue::from_key(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
