//! TCP client driver: load generation against a memcached-ASCII server.
//!
//! The paper evaluates its table inside a full network stack (MemC3
//! serving memcached traffic); this module is the client half for the
//! `cuckood` server in `crates/server`. It reuses the same deterministic
//! key machinery as the in-process driver — [`crate::keygen`] streams and
//! [`crate::zipf`] popularity — but issues real protocol bytes over a
//! pool of TCP connections.
//!
//! Throughput methodology: requests are **pipelined** — each client
//! thread writes a batch of `pipeline_depth` requests before reading the
//! batch's replies, amortizing per-syscall and per-RTT costs exactly the
//! way memcached benchmarks (mc-crusher, memtier) do. Batch round-trip
//! times land in a [`LatencyHistogram`]; divide by the depth for a
//! per-op approximation.
//!
//! This is deliberately client-side-only code: the server crate depends
//! on `workload` for histograms, so this module re-implements the small
//! client half of the wire protocol (request lines out, reply lines in)
//! rather than importing the server's parser.

use crate::keygen::{key_of, SplitMix64};
use crate::latency::LatencyHistogram;
use crate::zipf::Zipf;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// What one benchmark run should do.
#[derive(Debug, Clone)]
pub struct NetSpec {
    /// Server address, e.g. `127.0.0.1:11211`.
    pub addr: String,
    /// Client threads; each owns `connections / threads` sockets.
    pub threads: usize,
    /// Total TCP connections across all threads.
    pub connections: usize,
    /// Requests written per batch before replies are read.
    pub pipeline_depth: usize,
    /// Distinct keys addressed by the run.
    pub keyspace: u64,
    /// Zipf exponent for key popularity; `0.0` means uniform.
    pub zipf_s: f64,
    /// Percentage of operations that are `get`s (the rest are `set`s).
    pub read_pct: u8,
    /// Value payload length for `set`s.
    pub value_len: usize,
    /// Total operations across all threads (excluding prefill).
    pub total_ops: u64,
    /// `set` the whole keyspace once before the timed phase.
    pub prefill: bool,
}

impl Default for NetSpec {
    fn default() -> Self {
        NetSpec {
            addr: String::new(),
            threads: 4,
            connections: 8,
            pipeline_depth: 16,
            keyspace: 100_000,
            zipf_s: 0.99,
            read_pct: 90,
            value_len: 32,
            total_ops: 400_000,
            prefill: true,
        }
    }
}

/// Aggregated outcome of a run.
#[derive(Debug, Default)]
pub struct NetReport {
    /// Operations completed (replies received and classified).
    pub ops: u64,
    pub gets: u64,
    /// `get`s that returned a value.
    pub hits: u64,
    pub sets: u64,
    /// `ERROR`/`CLIENT_ERROR`/`SERVER_ERROR` replies.
    pub errors: u64,
    /// Timed-phase wall time.
    pub elapsed: Duration,
    /// Batch (pipeline) round-trip times, in nanoseconds.
    pub batch_rtt: LatencyHistogram,
}

impl NetReport {
    /// Millions of operations per second over the timed phase.
    pub fn mops(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64() / 1e6
    }
}

/// Maps a key rank to its 17-byte wire form (`k` + 16 hex digits). Ranks
/// are scrambled so rank adjacency (hot Zipf ranks) doesn't translate
/// into byte-prefix adjacency.
fn write_key(out: &mut Vec<u8>, rank: u64) {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let k = key_of(0, rank);
    out.push(b'k');
    for i in (0..16).rev() {
        out.push(HEX[((k >> (i * 4)) & 0xf) as usize]);
    }
}

/// One client connection with its reply-side read buffer.
struct ClientConn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    /// Consumed prefix of `rbuf`.
    rpos: usize,
}

/// What reply the next unanswered request expects.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Pending {
    /// `VALUE ... END` or bare `END`.
    Get,
    /// A single status line (`STORED`, `NOT_STORED`, ...).
    Line,
}

impl ClientConn {
    fn connect(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ClientConn { stream, rbuf: Vec::with_capacity(64 * 1024), rpos: 0 })
    }

    /// Returns the next complete `\r\n`- (or `\n`-) terminated line,
    /// reading from the socket as needed.
    fn read_line(&mut self) -> io::Result<std::ops::Range<usize>> {
        loop {
            if let Some(nl) = self.rbuf[self.rpos..].iter().position(|&b| b == b'\n') {
                let start = self.rpos;
                let mut end = self.rpos + nl;
                if end > start && self.rbuf[end - 1] == b'\r' {
                    end -= 1;
                }
                self.rpos += nl + 1;
                return Ok(start..end);
            }
            self.fill()?;
        }
    }

    /// Skips `n` payload bytes plus the trailing `\r\n`.
    fn skip_data(&mut self, n: usize) -> io::Result<()> {
        while self.rbuf.len() - self.rpos < n + 2 {
            self.fill()?;
        }
        self.rpos += n + 2;
        Ok(())
    }

    fn fill(&mut self) -> io::Result<()> {
        // Compact before growing: replies are consumed in lockstep with
        // batches, so the buffer stays small.
        if self.rpos > 0 {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
        let mut chunk = [0u8; 16 * 1024];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-reply",
            ));
        }
        self.rbuf.extend_from_slice(&chunk[..n]);
        Ok(())
    }

    /// Reads and classifies one reply. Returns `(was_hit, was_error)`.
    fn read_reply(&mut self, pending: Pending) -> io::Result<(bool, bool)> {
        match pending {
            Pending::Line => {
                let r = self.read_line()?;
                let line = &self.rbuf[r];
                let err = line.starts_with(b"ERROR")
                    || line.starts_with(b"CLIENT_ERROR")
                    || line.starts_with(b"SERVER_ERROR");
                Ok((false, err))
            }
            Pending::Get => {
                let mut hit = false;
                loop {
                    let r = self.read_line()?;
                    let line = self.rbuf[r].to_vec();
                    if line.starts_with(b"END") {
                        return Ok((hit, false));
                    }
                    if line.starts_with(b"VALUE ") {
                        hit = true;
                        // VALUE <key> <flags> <bytes> [cas]
                        let bytes: usize = line
                            .split(|&b| b == b' ')
                            .nth(3)
                            .and_then(|t| std::str::from_utf8(t).ok())
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| {
                                io::Error::new(io::ErrorKind::InvalidData, "bad VALUE header")
                            })?;
                        self.skip_data(bytes)?;
                    } else {
                        return Ok((hit, true));
                    }
                }
            }
        }
    }
}

/// Per-thread slice of the run.
struct ThreadTally {
    ops: u64,
    gets: u64,
    hits: u64,
    sets: u64,
    errors: u64,
}

/// `set`s every key in `0..keyspace` once, pipelined over one connection.
pub fn prefill(addr: &str, keyspace: u64, value_len: usize) -> io::Result<()> {
    let mut conn = ClientConn::connect(addr)?;
    let payload = vec![b'v'; value_len];
    let mut wbuf = Vec::with_capacity(64 * 1024);
    let mut outstanding = 0usize;
    for rank in 0..keyspace {
        wbuf.extend_from_slice(b"set ");
        write_key(&mut wbuf, rank);
        wbuf.extend_from_slice(format!(" 0 0 {}\r\n", value_len).as_bytes());
        wbuf.extend_from_slice(&payload);
        wbuf.extend_from_slice(b"\r\n");
        outstanding += 1;
        if outstanding == 64 || rank + 1 == keyspace {
            conn.stream.write_all(&wbuf)?;
            wbuf.clear();
            for _ in 0..outstanding {
                conn.read_reply(Pending::Line)?;
            }
            outstanding = 0;
        }
    }
    Ok(())
}

/// Runs the workload and returns the aggregated report.
///
/// # Errors
///
/// Fails when a connection cannot be established or a reply cannot be
/// read; partial work is discarded.
pub fn run(spec: &NetSpec) -> io::Result<NetReport> {
    assert!(spec.threads > 0 && spec.connections > 0 && spec.pipeline_depth > 0);
    assert!(spec.keyspace > 0, "empty keyspace");
    if spec.prefill {
        prefill(&spec.addr, spec.keyspace, spec.value_len)?;
    }
    let report = std::sync::Mutex::new(NetReport::default());
    let failure = std::sync::Mutex::new(None::<io::Error>);
    let ops_done = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|s| {
        for t in 0..spec.threads {
            let report = &report;
            let failure = &failure;
            let ops_done = &ops_done;
            s.spawn(move || {
                if let Err(e) = client_thread(spec, t as u64, ops_done, report) {
                    failure.lock().unwrap().get_or_insert(e);
                }
            });
        }
    });
    if let Some(e) = failure.into_inner().unwrap() {
        return Err(e);
    }
    let mut report = report.into_inner().unwrap();
    report.elapsed = started.elapsed();
    Ok(report)
}

fn client_thread(
    spec: &NetSpec,
    thread: u64,
    ops_done: &AtomicU64,
    report: &std::sync::Mutex<NetReport>,
) -> io::Result<()> {
    let conns_here = (spec.connections / spec.threads).max(1);
    let mut conns: Vec<ClientConn> = (0..conns_here)
        .map(|_| ClientConn::connect(&spec.addr))
        .collect::<io::Result<_>>()?;
    let mut rng = SplitMix64::new(0xc0ffee ^ (thread << 32));
    let zipf = (spec.zipf_s > 0.0).then(|| Zipf::new(spec.keyspace, spec.zipf_s));
    let payload = vec![b'v'; spec.value_len];
    let rtt = LatencyHistogram::new();
    let mut tally = ThreadTally { ops: 0, gets: 0, hits: 0, sets: 0, errors: 0 };
    let mut wbuf = Vec::with_capacity(64 * 1024);
    let mut pendings = Vec::with_capacity(spec.pipeline_depth);
    let mut conn_ix = 0usize;

    // Claim work in batch-sized chunks from the shared budget so threads
    // finish together even when unevenly scheduled; the claim windows
    // partition the budget, so the batch sizes sum to exactly total_ops.
    loop {
        let prev = ops_done.fetch_add(spec.pipeline_depth as u64, Ordering::Relaxed); // ORDERING: alloc.unique-id
        if prev >= spec.total_ops {
            break;
        }
        let batch = spec.pipeline_depth.min((spec.total_ops - prev) as usize);
        wbuf.clear();
        pendings.clear();
        for _ in 0..batch {
            let rank = match &zipf {
                Some(z) => z.sample(&mut rng),
                None => rng.below(spec.keyspace),
            };
            if rng.below(100) < spec.read_pct as u64 {
                wbuf.extend_from_slice(b"get ");
                write_key(&mut wbuf, rank);
                wbuf.extend_from_slice(b"\r\n");
                pendings.push(Pending::Get);
                tally.gets += 1;
            } else {
                wbuf.extend_from_slice(b"set ");
                write_key(&mut wbuf, rank);
                wbuf.extend_from_slice(format!(" 0 0 {}\r\n", spec.value_len).as_bytes());
                wbuf.extend_from_slice(&payload);
                wbuf.extend_from_slice(b"\r\n");
                pendings.push(Pending::Line);
                tally.sets += 1;
            }
        }
        let n_conns = conns.len();
        let conn = &mut conns[conn_ix];
        conn_ix = (conn_ix + 1) % n_conns;
        let t0 = Instant::now();
        conn.stream.write_all(&wbuf)?;
        for &p in &pendings {
            let (hit, err) = conn.read_reply(p)?;
            tally.ops += 1;
            tally.hits += hit as u64;
            tally.errors += err as u64;
        }
        rtt.record(t0.elapsed().as_nanos() as u64);
    }

    let mut agg = report.lock().unwrap();
    agg.ops += tally.ops;
    agg.gets += tally.gets;
    agg.hits += tally.hits;
    agg.sets += tally.sets;
    agg.errors += tally.errors;
    agg.batch_rtt.merge(&rtt);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpListener;

    /// A minimal in-test memcached responder: answers `get` with a miss
    /// (or a hit for keys it has seen `set`), `set` with STORED.
    fn tiny_server() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let mut store = std::collections::HashMap::<String, Vec<u8>>::new();
            // One connection is enough for the unit test.
            if let Ok((stream, _)) = listener.accept() {
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut stream = stream;
                let mut line = String::new();
                loop {
                    line.clear();
                    if reader.read_line(&mut line).unwrap_or(0) == 0 {
                        break;
                    }
                    let toks: Vec<&str> = line.split_whitespace().collect();
                    match toks.first().copied() {
                        Some("set") => {
                            let n: usize = toks[4].parse().unwrap();
                            let mut data = vec![0u8; n + 2];
                            reader.read_exact(&mut data).unwrap();
                            data.truncate(n);
                            store.insert(toks[1].to_string(), data);
                            stream.write_all(b"STORED\r\n").unwrap();
                        }
                        Some("get") => {
                            if let Some(v) = store.get(toks[1]) {
                                stream
                                    .write_all(
                                        format!("VALUE {} 0 {}\r\n", toks[1], v.len()).as_bytes(),
                                    )
                                    .unwrap();
                                stream.write_all(v).unwrap();
                                stream.write_all(b"\r\n").unwrap();
                            }
                            stream.write_all(b"END\r\n").unwrap();
                        }
                        _ => stream.write_all(b"ERROR\r\n").unwrap(),
                    }
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn driver_round_trips_against_a_tiny_server() {
        let (addr, handle) = tiny_server();
        let spec = NetSpec {
            addr: addr.to_string(),
            threads: 1,
            connections: 1,
            pipeline_depth: 4,
            keyspace: 64,
            zipf_s: 0.0,
            read_pct: 50,
            value_len: 8,
            total_ops: 200,
            prefill: false,
        };
        let report = run(&spec).unwrap();
        assert_eq!(report.ops, 200);
        assert_eq!(report.gets + report.sets, 200);
        assert_eq!(report.errors, 0);
        assert!(!report.batch_rtt.is_empty());
        assert!(report.mops() > 0.0);
        drop(report);
        handle.join().unwrap();
    }

    #[test]
    fn key_encoding_is_deterministic_and_distinct() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_key(&mut a, 1);
        write_key(&mut b, 2);
        assert_ne!(a, b);
        assert_eq!(a.len(), 17);
        let mut a2 = Vec::new();
        write_key(&mut a2, 1);
        assert_eq!(a, a2);
    }
}
