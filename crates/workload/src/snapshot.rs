//! Counter-delta snapshots for bench reports.
//!
//! The figure benches report throughput; this module lets them also
//! carry the observability counters that *explain* the throughput —
//! seqlock retries behind a read-path regression, BFS path lengths
//! behind an insert-path one. A bench takes a [`MetricSnapshot`] before
//! and after the measured phase and embeds [`MetricSnapshot::delta`] in
//! its `BENCH_*.json`, so trend tracking sees cause alongside effect.

use crate::adapter::{BenchValue, ConcurrentMap};
use metrics::Value;

/// A flattened point-in-time copy of a table's metric samples.
///
/// Counters and gauges flatten to `(name, value)`; labeled series get
/// the label value suffixed (`name_labelval`); histograms flatten to
/// `name_count` and `name_sum` — buckets are an exposition concern, the
/// two moments are what trend dashboards diff.
#[derive(Debug, Clone, Default)]
pub struct MetricSnapshot {
    pairs: Vec<(String, u64)>,
}

impl MetricSnapshot {
    /// Captures the current samples of `map`.
    pub fn take<V: BenchValue, M: ConcurrentMap<V> + ?Sized>(map: &M) -> Self {
        let mut samples = Vec::new();
        map.metric_samples(&mut samples);
        let mut pairs = Vec::with_capacity(samples.len() + 4);
        for s in &samples {
            let name = match s.label {
                Some((_, val)) => format!("{}_{val}", s.name),
                None => s.name.to_string(),
            };
            match s.value {
                Value::Counter(v) | Value::Gauge(v) => pairs.push((name, v)),
                Value::Histogram(h) => {
                    pairs.push((format!("{name}_count"), h.count()));
                    pairs.push((format!("{name}_sum"), h.sum));
                }
            }
        }
        MetricSnapshot { pairs }
    }

    /// The flattened `(name, value)` pairs, in collection order.
    pub fn pairs(&self) -> &[(String, u64)] {
        &self.pairs
    }

    /// Per-series change since `before` (saturating: relaxed snapshots
    /// can tear, and gauges may legitimately decrease — a shrinking
    /// gauge reports 0 here, its absolute value belongs in `self`).
    /// Series absent from `before` diff against zero.
    pub fn delta(&self, before: &MetricSnapshot) -> Vec<(String, u64)> {
        self.pairs
            .iter()
            .map(|(name, v)| {
                let old = before
                    .pairs
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|&(_, v)| v)
                    .unwrap_or(0);
                (name.clone(), v.saturating_sub(old))
            })
            .collect()
    }
}

/// Renders `(name, value)` pairs as a JSON object literal (sorted-input
/// order preserved), for embedding in the hand-built `BENCH_*.json`
/// artifacts: `{"a": 1, "b": 2}`.
pub fn json_object(pairs: &[(String, u64)]) -> String {
    let body: Vec<String> = pairs.iter().map(|(n, v)| format!("\"{n}\": {v}")).collect();
    format!("{{{}}}", body.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuckoo::OptimisticCuckooMap;

    #[test]
    fn snapshot_delta_tracks_activity() {
        let map: OptimisticCuckooMap<u64, u64, 8> = OptimisticCuckooMap::with_capacity(1 << 10);
        let before = MetricSnapshot::take(&map);
        for k in 0..500u64 {
            map.insert(k, k).unwrap();
        }
        for k in 0..500u64 {
            assert_eq!(ConcurrentMap::<u64>::read(&map, &k), Some(k));
        }
        let after = MetricSnapshot::take(&map);
        assert!(!after.pairs().is_empty());
        let delta = after.delta(&before);
        let get = |name: &str| {
            delta
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or_else(|| panic!("missing series {name}"))
        };
        // Uncontended single-threaded traffic: every insert acquires
        // stripe locks, nothing retries.
        assert!(get("cuckoo_lock_acquisitions_total") >= 500);
        assert_eq!(get("cuckoo_read_retries_total"), 0);
        let json = json_object(&delta);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"cuckoo_lock_acquisitions_total\":"));
    }

    #[test]
    fn delta_saturates_and_defaults_missing_series_to_zero() {
        let a = MetricSnapshot { pairs: vec![("x".into(), 10)] };
        let b = MetricSnapshot { pairs: vec![("x".into(), 7), ("y".into(), 3)] };
        let d = b.delta(&a);
        assert_eq!(d, vec![("x".to_string(), 0), ("y".to_string(), 3)]);
    }
}
