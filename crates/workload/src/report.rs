//! Plain-text table and CSV rendering for the figure benches.
//!
//! Every figure bench prints the same rows/series the paper reports, as
//! an aligned text table (human-readable in the bench log) and optionally
//! as CSV under `target/bench-results/` for plotting.

use std::io::Write;
use std::path::PathBuf;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as CSV to `target/bench-results/<name>.csv`.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("target/bench-results");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// Formats a throughput value (Mops) with sensible precision.
pub fn mops(v: f64) -> String {
    if v.is_nan() {
        "n/a".into()
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Formats a ratio as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats a byte count in MiB.
pub fn mib(bytes: usize) -> String {
    format!("{:.1} MiB", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "mops"]);
        t.row(vec!["short".into(), "1.23".into()]);
        t.row(vec!["a much longer name".into(), "45.6".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("a much longer name"));
        let lines: Vec<&str> = s.lines().collect();
        // Header and rows must align the second column.
        let header = lines.iter().position(|l| l.contains("mops")).unwrap();
        let col = lines[header].find("mops").unwrap();
        assert_eq!(lines[header + 2].find("1.23"), Some(col));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(mops(12.34), "12.3");
        assert_eq!(mops(1.234), "1.23");
        assert_eq!(mops(f64::NAN), "n/a");
        assert_eq!(pct(0.803), "80.3%");
        assert_eq!(mib(2 * 1024 * 1024), "2.0 MiB");
    }

    #[test]
    fn csv_writes_and_parses_back() {
        let mut t = Table::new("csv", &["k", "v"]);
        t.row(vec!["a".into(), "1".into()]);
        let path = t.write_csv("unit_test_csv").unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "k,v\na,1\n");
    }
}
