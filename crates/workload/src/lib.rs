//! Workload generation and measurement for the paper's evaluation (§6).
//!
//! "Each experiment first creates an empty cuckoo hash table and then
//! fills it to 95% capacity, with random mixed concurrent reads and
//! writes as per the specified insert/lookup ratio. Because Cuckoo
//! hashing slows down as the table fills, we measure both overall
//! throughput and throughput for certain load factor intervals."
//!
//! - [`adapter::ConcurrentMap`] — the uniform table interface every
//!   implementation under test (cuckoo+, MemC3, elided, baselines) plugs
//!   into.
//! - [`driver`] — the multi-threaded fill/mixed-ratio driver with
//!   load-factor-window timing (per-thread key streams, lazily aggregated
//!   progress counters — principle P1).
//! - [`keygen`] — deterministic per-thread SplitMix64 key streams.
//! - [`net`] — TCP client driver (connection pool + pipelined memcached
//!   ASCII requests) for benchmarking the `cuckood` server end to end.
//! - [`report`] — plain-text table and CSV rendering for the figure
//!   benches.

pub mod adapter;
pub mod driver;
pub mod keygen;
pub mod latency;
pub mod net;
pub mod report;
pub mod snapshot;
pub mod zipf;

pub use adapter::{BenchValue, ConcurrentMap, PutResult};
pub use driver::{FillLatencyReport, FillLatencySpec, FillReport, FillSpec, LookupSpec};
pub use latency::LatencyHistogram;
pub use report::Table;
pub use snapshot::MetricSnapshot;
pub use zipf::Zipf;
