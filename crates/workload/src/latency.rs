//! Log-bucketed latency histograms (HdrHistogram-style, from scratch).
//!
//! Throughput numbers hide tail behavior: an optimistic reader that
//! retries under writer pressure, or an insert that walks a long cuckoo
//! path, shows up at p99/p999 long before it moves the mean. The figure
//! benches report throughput (as the paper does); the latency driver
//! uses these histograms for the tail-latency extension experiment.
//!
//! Layout: 64 exponential tiers (by leading zeros of the nanosecond
//! count), each split into 32 linear sub-buckets → ≤ ~3 % relative error,
//! 2048 counters, `record` is two shifts and an add.

// ORDERING-FILE: stats.counter — histogram buckets/sums are reporting counters.

use std::sync::atomic::{AtomicU64, Ordering};

const SUB_BITS: u32 = 5;
const SUBS: usize = 1 << SUB_BITS;
const TIERS: usize = 64;

/// A concurrent log-bucketed histogram of nanosecond latencies.
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for LatencyHistogram {
    /// Summary statistics, not the raw buckets.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.len())
            .field("mean_ns", &self.mean())
            .field("p50_ns", &self.percentile(50.0))
            .field("p99_ns", &self.percentile(99.0))
            .field("max_ns", &self.max())
            .finish()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..TIERS * SUBS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    fn index_of(nanos: u64) -> usize {
        if nanos < SUBS as u64 {
            return nanos as usize;
        }
        let tier = 63 - nanos.leading_zeros();
        let sub = (nanos >> (tier - SUB_BITS)) as usize & (SUBS - 1);
        ((tier - SUB_BITS + 1) as usize) * SUBS + sub
    }

    /// Lower bound of the bucket at `index` (the value reported for it).
    fn value_of(index: usize) -> u64 {
        let tier = index / SUBS;
        let sub = (index % SUBS) as u64;
        if tier == 0 {
            return sub;
        }
        let shift = tier as u32 - 1;
        ((SUBS as u64) << shift) | (sub << shift)
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, nanos: u64) {
        self.buckets[Self::index_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Number of samples.
    pub fn len(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Whether the histogram is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Largest recorded sample (exact).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Value at percentile `p` (0.0–100.0), within bucket resolution.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.len();
        if total == 0 {
            return 0;
        }
        let target = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Self::value_of(i);
            }
        }
        self.max()
    }

    /// Mean of recorded samples (bucket-resolution approximation).
    pub fn mean(&self) -> f64 {
        let total = self.len();
        if total == 0 {
            return 0.0;
        }
        let sum: u128 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, b)| Self::value_of(i) as u128 * b.load(Ordering::Relaxed) as u128)
            .sum();
        sum as f64 / total as f64
    }

    /// Zeroes every bucket and the count/max registers. Not atomic with
    /// respect to concurrent `record` calls: samples recorded while the
    /// reset sweeps may land before or after it (operator-facing `stats
    /// reset`, not a synchronization point).
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Adds another histogram's counts into this one.
    pub fn merge(&self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter().zip(other.buckets.iter()) {
            a.fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_subbucket_range() {
        let h = LatencyHistogram::new();
        for v in [0u64, 1, 5, 31] {
            h.record(v);
        }
        assert_eq!(h.len(), 4);
        assert_eq!(h.percentile(1.0), 0);
        assert_eq!(h.percentile(100.0), 31);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn bucket_relative_error_bounded() {
        let h = LatencyHistogram::new();
        for v in [100u64, 1_000, 10_000, 123_456, 9_876_543, u32::MAX as u64] {
            let idx = LatencyHistogram::index_of(v);
            let lo = LatencyHistogram::value_of(idx);
            assert!(lo <= v, "bucket floor {lo} above sample {v}");
            assert!(
                (v - lo) as f64 / v as f64 <= 1.0 / SUBS as f64 + 1e-9,
                "error too large for {v}: floor {lo}"
            );
            let _ = h;
        }
    }

    #[test]
    fn percentiles_order_and_converge() {
        let h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 100);
        }
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        let p999 = h.percentile(99.9);
        assert!(p50 < p99 && p99 <= p999, "{p50} {p99} {p999}");
        // p50 of uniform 100..=1_000_000 ≈ 500_000 (±bucket error).
        assert!((450_000..550_000).contains(&p50), "{p50}");
        assert!(p999 <= h.max());
    }

    #[test]
    fn mean_tracks_uniform_distribution() {
        let h = LatencyHistogram::new();
        for i in 0..1000u64 {
            h.record(i * 1000);
        }
        let mean = h.mean();
        assert!((450_000.0..=500_500.0).contains(&mean), "{mean}");
    }

    #[test]
    fn merge_combines_counts() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(100);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!(a.percentile(100.0) >= 900_000);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn concurrent_recording() {
        let h = LatencyHistogram::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.len(), 40_000);
    }
}
