//! Lock-elision lab: watch the simulated-TSX behaviors from §2.3 and §5.
//!
//! Demonstrates, with live abort statistics:
//! 1. short non-conflicting critical sections commit speculatively and
//!    scale;
//! 2. long critical sections blow the capacity budget, fall back, and
//!    serialize everyone (the §2.3 failure mode);
//! 3. the glibc retry policy gives up earlier than the paper's `TSX*`
//!    policy under transient conflicts.
//!
//! Run with `cargo run --release --example elision_lab`.

use cuckoo_repro::htm::{ElidedLock, ElisionConfig, HtmDomain, MemCtx};
use std::sync::Arc;
use std::time::Instant;

fn scenario<F>(name: &str, cfg: ElisionConfig, threads: usize, per_thread: usize, body: F)
where
    F: Fn(&ElidedLock, u64, &mut [u64]) + Sync,
{
    let domain = Arc::new(HtmDomain::new());
    let lock = ElidedLock::new(domain, cfg);
    // 1024 independent cells spread across cache lines.
    let mut cells = vec![0u64; 1024 * 8];
    let cells_ptr = SendSlice(cells.as_mut_ptr(), cells.len());
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let lock = &lock;
            let body = &body;
            s.spawn(move || {
                let cells_ptr = cells_ptr;
                // SAFETY: the slice outlives the scope; disjoint logical
                // cells are coordinated by the elided lock inside `body`.
                let cells = unsafe { std::slice::from_raw_parts_mut(cells_ptr.0, cells_ptr.1) };
                for i in 0..per_thread as u64 {
                    body(lock, t * 1_000_000 + i, cells);
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let stats = lock.stats().snapshot();
    println!(
        "{name:<28} {:>8.2} Kops/s | commits {:>7} | aborts {:>6} ({:>5.1}%) | fallbacks {:>5} ({:>5.1}%)",
        (threads * per_thread) as f64 / elapsed.as_secs_f64() / 1e3,
        stats.commits,
        stats.aborts(),
        stats.abort_rate() * 100.0,
        stats.fallbacks,
        stats.fallback_rate() * 100.0,
    );
}

#[derive(Clone, Copy)]
struct SendSlice(*mut u64, usize);
// SAFETY: example-only; pointee outlives all users, synchronization via
// the elided lock under test.
unsafe impl Send for SendSlice {}
unsafe impl Sync for SendSlice {}

fn main() {
    println!("elision lab: 4 threads, simulated RTM\n");

    // 1. Short disjoint sections: near-perfect speculation.
    scenario(
        "short disjoint writes",
        ElisionConfig::optimized(),
        4,
        20_000,
        |lock, seed, cells| {
            let idx = ((seed.wrapping_mul(0x9e3779b97f4a7c15) >> 32) as usize % 1024) * 8;
            lock.execute(|ctx| {
                // SAFETY: `idx` in bounds; coordination via the lock.
                let p = &mut cells[idx] as *mut u64;
                let v = unsafe { ctx.load(p)? };
                unsafe { ctx.store(p, v + 1) }
            });
        },
    );

    // 2. One hot cell: every transaction conflicts with every other.
    scenario(
        "single hot cell",
        ElisionConfig::optimized(),
        4,
        20_000,
        |lock, _, cells| {
            lock.execute(|ctx| {
                let p = &mut cells[0] as *mut u64;
                // SAFETY: in-bounds; coordination via the lock.
                let v = unsafe { ctx.load(p)? };
                unsafe { ctx.store(p, v + 1) }
            });
        },
    );

    // 3. Huge critical sections: capacity aborts force the fallback lock
    //    (the §2.3 "naive global section" failure).
    scenario(
        "oversized sections",
        ElisionConfig::optimized(),
        4,
        500,
        |lock, seed, cells| {
            lock.execute(|ctx| {
                for k in 0..2048 {
                    let p = &mut cells[(k * 4) % cells.len()] as *mut u64;
                    // SAFETY: in-bounds; coordination via the lock.
                    unsafe { ctx.store(p, seed)? };
                }
                Ok(())
            });
        },
    );

    // 4. glibc vs optimized retry policy under moderate conflict.
    println!();
    for (name, cfg) in [
        ("glibc retry policy", ElisionConfig::glibc()),
        ("TSX* retry policy", ElisionConfig::optimized()),
    ] {
        scenario(name, cfg, 4, 20_000, |lock, seed, cells| {
            // Two hot cells: transient conflicts likely but short.
            let idx = (seed % 2) as usize * 8;
            lock.execute(|ctx| {
                let p = &mut cells[idx] as *mut u64;
                // SAFETY: in-bounds; coordination via the lock.
                let v = unsafe { ctx.load(p)? };
                unsafe { ctx.store(p, v + 1) }
            });
        });
    }

    println!(
        "\nexpected shapes: disjoint sections have ~0 fallbacks; the hot \
         cell aborts often yet mostly commits on retry; oversized sections \
         fall back nearly always; glibc falls back more than TSX*."
    );
}
