//! A memcached-style concurrent key-value cache — the workload that
//! motivated MemC3 and this paper's table.
//!
//! Several client threads issue a skewed (approximately Zipfian) mix of
//! GETs and SETs against a fixed-size cache built on
//! [`OptimisticCuckooMap`]. SETs upsert; when the table reports it is too
//! full, the cache evicts a batch of random victims (a common
//! cache-eviction stand-in) and retries. The run prints hit rates and
//! aggregate throughput per thread count.
//!
//! Run with `cargo run --release --example kv_cache`.

use cuckoo_repro::cuckoo::{InsertError, OptimisticCuckooMap};
use cuckoo_repro::workload::keygen::SplitMix64;
use cuckoo_repro::workload::Zipf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// 32-byte values, as in a small-object cache.
type Value = [u8; 32];

struct Cache {
    map: OptimisticCuckooMap<u64, Value, 8>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Cache {
    fn new(capacity: usize) -> Self {
        Cache {
            map: OptimisticCuckooMap::with_capacity(capacity),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn get(&self, key: u64) -> Option<Value> {
        let v = self.map.get(&key);
        match v {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        v
    }

    fn set(&self, key: u64, val: Value, zipf: &Zipf, rng: &mut SplitMix64) {
        loop {
            match self.map.upsert(key, val) {
                Ok(_) => return,
                Err(InsertError::TableFull) => self.evict_some(zipf, rng),
                Err(InsertError::KeyExists) => unreachable!("upsert cannot report exists"),
            }
        }
    }

    /// Evicts a handful of random residents (cheap approximation of an
    /// eviction policy; production caches would track recency).
    fn evict_some(&self, zipf: &Zipf, rng: &mut SplitMix64) {
        let mut evicted = 0;
        while evicted < 64 {
            let key = zipf.sample(rng);
            if self.map.remove(&key).is_some() {
                evicted += 1;
            }
        }
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }
}

fn value_for(key: u64) -> Value {
    let mut v = [0u8; 32];
    v[..8].copy_from_slice(&key.to_le_bytes());
    v
}

fn run(threads: usize, ops_per_thread: u64) {
    let cache = Cache::new(1 << 17);
    // Zipf-skewed popularity over a universe larger than the cache, the
    // classic cache-workload shape (s ≈ 0.99).
    let zipf = Zipf::new(1 << 19, 0.99);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let cache = &cache;
            let zipf = &zipf;
            s.spawn(move || {
                let mut rng = SplitMix64::new(0xcafe + t);
                for _ in 0..ops_per_thread {
                    let key = zipf.sample(&mut rng);
                    if rng.below(10) < 9 {
                        // 90% GET; on miss, populate (read-through).
                        if cache.get(key).is_none() {
                            cache.set(key, value_for(key), zipf, &mut rng);
                        }
                    } else {
                        cache.set(key, value_for(key), zipf, &mut rng);
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let total_ops = threads as u64 * ops_per_thread;
    let hits = cache.hits.load(Ordering::Relaxed);
    let misses = cache.misses.load(Ordering::Relaxed);
    println!(
        "{threads} threads: {:.2} Mops, hit rate {:.1}%, {} residents, {} evictions",
        total_ops as f64 / elapsed.as_secs_f64() / 1e6,
        hits as f64 / (hits + misses).max(1) as f64 * 100.0,
        cache.map.len(),
        cache.evictions.load(Ordering::Relaxed),
    );
}

fn main() {
    println!("memcached-style cache on cuckoo+ (90% GET / 10% SET, zipf keys)");
    for threads in [1, 2, 4, 8] {
        run(threads, 200_000);
    }
}
