//! Concurrent stream deduplication — the hash table as a parallel
//! membership set (a kernel-cache-like use from the paper's intro).
//!
//! Several worker threads consume a shared stream of records (here:
//! synthetic URLs with heavy duplication) and must emit each distinct
//! record exactly once. `Insert`'s "key already exists" error doubles as
//! an atomic claim check: whichever thread inserts first owns the record,
//! so no output is duplicated and no cross-thread coordination beyond the
//! table is needed.
//!
//! Run with `cargo run --release --example dedup`.

use cuckoo_repro::cuckoo::hash::mix64;
use cuckoo_repro::cuckoo::{InsertError, OptimisticCuckooMap};
use cuckoo_repro::workload::keygen::SplitMix64;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

const STREAM_LEN: usize = 2_000_000;
const DISTINCT: u64 = 300_000;
const THREADS: usize = 4;

fn main() {
    // Synthesize a duplicated stream: record ids drawn from a skewed
    // distribution over `DISTINCT` distinct values.
    let mut rng = SplitMix64::new(42);
    let stream: Vec<u64> = (0..STREAM_LEN)
        .map(|_| {
            let r = rng.below(100);
            if r < 50 {
                rng.below(DISTINCT / 100) // hot 1%
            } else {
                rng.below(DISTINCT)
            }
        })
        .collect();

    // The claim set: record id -> claiming thread.
    let seen: OptimisticCuckooMap<u64, u64, 8> =
        OptimisticCuckooMap::with_capacity((DISTINCT as usize) * 2);
    let cursor = AtomicUsize::new(0);
    let emitted = AtomicU64::new(0);
    let duplicates = AtomicU64::new(0);
    // Verification checksum of emitted ids (order-independent).
    let checksum = AtomicU64::new(0);

    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let stream = &stream;
            let seen = &seen;
            let cursor = &cursor;
            let emitted = &emitted;
            let duplicates = &duplicates;
            let checksum = &checksum;
            s.spawn(move || {
                loop {
                    // Grab a batch of the stream.
                    let at = cursor.fetch_add(1024, Ordering::Relaxed);
                    if at >= stream.len() {
                        return;
                    }
                    for &id in &stream[at..(at + 1024).min(stream.len())] {
                        match seen.insert(id, t) {
                            Ok(()) => {
                                // We own this record: "emit" it.
                                emitted.fetch_add(1, Ordering::Relaxed);
                                checksum.fetch_xor(mix64(id), Ordering::Relaxed);
                            }
                            Err(InsertError::KeyExists) => {
                                duplicates.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("dedup set full: {e}"),
                        }
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();

    let distinct_truth: std::collections::HashSet<u64> = stream.iter().copied().collect();
    let expected_checksum = distinct_truth
        .iter()
        .fold(0u64, |acc, &id| acc ^ mix64(id));

    println!(
        "processed {} records in {:.2?} ({:.2} Mrec/s) with {THREADS} threads",
        STREAM_LEN,
        elapsed,
        STREAM_LEN as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!(
        "emitted {} distinct (truth {}), suppressed {} duplicates",
        emitted.load(Ordering::Relaxed),
        distinct_truth.len(),
        duplicates.load(Ordering::Relaxed)
    );
    assert_eq!(emitted.load(Ordering::Relaxed) as usize, distinct_truth.len());
    assert_eq!(checksum.load(Ordering::Relaxed), expected_checksum);
    assert_eq!(seen.len(), distinct_truth.len());
    println!("exactly-once emission verified (checksum match)");
}
