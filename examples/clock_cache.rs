//! The MemC3 loop closed: cuckoo+ hashing + CLOCK eviction as a bounded
//! concurrent cache, driven by a Zipf-skewed GET/SET workload.
//!
//! Compare against `kv_cache.rs` (which evicts randomly): CLOCK's
//! second-chance bit protects the hot head of the popularity
//! distribution, so hit rates are noticeably higher at the same capacity.
//!
//! Run with `cargo run --release --example clock_cache`.

use cuckoo_repro::cache::ClockCache;
use cuckoo_repro::workload::keygen::SplitMix64;
use cuckoo_repro::workload::Zipf;
use std::time::Instant;

fn value_for(key: u64) -> [u8; 32] {
    let mut v = [0u8; 32];
    v[..8].copy_from_slice(&key.to_le_bytes());
    v
}

fn run(threads: usize, ops_per_thread: u64) {
    // Cache a quarter of the key universe.
    let cache: ClockCache<[u8; 32]> = ClockCache::new(1 << 15);
    let zipf = Zipf::new(1 << 17, 0.99);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let cache = &cache;
            let zipf = &zipf;
            s.spawn(move || {
                let mut rng = SplitMix64::new(0xfeed + t);
                for _ in 0..ops_per_thread {
                    let key = zipf.sample(&mut rng);
                    if rng.below(10) < 9 {
                        if cache.get(key).is_none() {
                            cache.put(key, value_for(key)); // read-through
                        }
                    } else {
                        cache.put(key, value_for(key));
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let s = cache.stats();
    println!(
        "{threads} threads: {:.2} Mops | hit rate {:.1}% | {} resident / {} cap | \
         {} evictions, {} second chances",
        (threads as u64 * ops_per_thread) as f64 / elapsed.as_secs_f64() / 1e6,
        s.hits as f64 / (s.hits + s.misses).max(1) as f64 * 100.0,
        cache.len(),
        cache.capacity(),
        s.evictions,
        s.second_chances,
    );
}

fn main() {
    println!("CLOCK cache on cuckoo+ (90% GET, zipf s=0.99, 25% cache ratio)");
    for threads in [1, 2, 4] {
        run(threads, 300_000);
    }
}
