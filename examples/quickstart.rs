//! Quickstart: the three table flavors in two minutes.
//!
//! Run with `cargo run --release --example quickstart`.

use cuckoo_repro::cuckoo::{
    CuckooMap, ElidedCuckooMap, InsertError, OptimisticCuckooMap, UpsertOutcome,
};

fn main() {
    // 1. cuckoo+ with fine-grained locking: the paper's headline table.
    //    Fixed capacity, `Plain` (fixed-size, any-bits-valid) keys and
    //    values, lock-free reads, concurrent writers.
    let map: OptimisticCuckooMap<u64, u64> = OptimisticCuckooMap::with_capacity(100_000);
    map.insert(1, 100).unwrap();
    map.insert(2, 200).unwrap();
    assert_eq!(map.get(&1), Some(100));
    assert_eq!(map.insert(1, 999), Err(InsertError::KeyExists));
    assert_eq!(map.upsert(1, 101).unwrap(), UpsertOutcome::Updated);
    assert_eq!(map.remove(&2), Some(200));
    println!(
        "cuckoo+ (fine-grained): {} items, load factor {:.4}, {} KiB",
        map.len(),
        map.load_factor(),
        map.memory_bytes() / 1024
    );

    // Concurrent use needs no locks on the caller side.
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let map = &map;
            s.spawn(move || {
                for i in 0..10_000u64 {
                    let key = (t + 1) * 1_000_000 + i;
                    map.insert(key, key * 2).unwrap();
                }
            });
        }
    });
    assert_eq!(map.len(), 40_001);
    println!("after 4 concurrent writers: {} items", map.len());

    // 2. cuckoo+ under (simulated) TSX lock elision: same algorithms, one
    //    coarse lock that is almost never really taken.
    let elided: ElidedCuckooMap<u64, u64> = ElidedCuckooMap::with_capacity(10_000);
    for k in 0..5_000 {
        elided.insert(k, k).unwrap();
    }
    let stats = elided.htm_stats().unwrap();
    println!(
        "cuckoo+ (elided): {} commits, {} aborts ({:.2}% abort rate), {} fallbacks",
        stats.commits,
        stats.aborts(),
        stats.abort_rate() * 100.0,
        stats.fallbacks
    );

    // 3. The libcuckoo-style general map (paper §7): arbitrary key/value
    //    types, locked reads, automatic expansion.
    let general: CuckooMap<String, Vec<u8>> = CuckooMap::new();
    general.insert("alpha".into(), vec![1, 2, 3]).unwrap();
    general.insert("beta".into(), b"hello".to_vec()).unwrap();
    assert_eq!(general.get_with(&"alpha".to_string(), |v| v.len()), Some(3));
    let before = general.capacity();
    for i in 0..10_000u32 {
        general.insert(format!("key-{i}"), i.to_le_bytes().to_vec()).unwrap();
    }
    println!(
        "general map: grew from {} to {} slots holding {} items",
        before,
        general.capacity(),
        general.len()
    );
}
