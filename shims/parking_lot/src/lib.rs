//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the small slice of parking_lot's API it actually uses: [`Mutex`] and
//! [`RwLock`] with guard-returning (non-`Result`) lock methods. Both wrap
//! the `std::sync` primitives and swallow poisoning, which matches
//! parking_lot's semantics (parking_lot locks do not poison).
//!
//! Performance caveat, relevant to benches that compare lock kinds: this
//! is a futex-backed std mutex, not parking_lot's adaptive lock. The
//! paper's point those benches make — spinlocks beat general-purpose
//! mutexes for very short critical sections — still holds against the
//! std mutex, so comparative numbers keep their shape.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive; `lock()` returns the guard directly.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
        let _r = l.read();
        assert!(l.try_write().is_none());
    }
}
