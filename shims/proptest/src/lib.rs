//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the subset of proptest the test suite uses:
//!
//! - the [`proptest!`] macro (turns `fn f(x in strategy, ..)` into a
//!   `#[test]` that samples the strategies for many cases);
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`];
//! - strategies: integer `Range` / `RangeInclusive`, [`any`],
//!   tuples of strategies, and [`collection::vec`];
//! - `prelude::*` re-exporting all of the above.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - **no shrinking** — a failing case reports its inputs but is not
//!   minimized;
//! - **fixed deterministic seed** (override with `PROPTEST_SEED`), so CI
//!   runs are reproducible; case count defaults to 64 (override with
//!   `PROPTEST_CASES`);
//! - `proptest-regressions` files are ignored.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    use std::fmt;

    /// Outcome of one generated case's body.
    pub enum TestCaseError {
        /// `prop_assume!` failed: resample, don't count the case.
        Reject(String),
        /// `prop_assert*!` failed: the property is violated.
        Fail(String),
    }

    impl fmt::Debug for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "failed: {m}"),
            }
        }
    }

    /// SplitMix64 — deterministic, seedable, good enough for sampling.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Lemire's multiply-shift reduction; the slight modulo bias of
            // the plain form is irrelevant for test sampling.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Per-test driver: seed/case-count resolution and the case loop live
    /// in the `proptest!` expansion; this holds the shared knobs.
    pub struct Config {
        pub cases: u32,
        pub seed: u64,
        pub max_rejects: u32,
    }

    impl Config {
        pub fn from_env(test_name: &str) -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            let base = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0x5EED_CA5E_0F00_D15Eu64);
            // Mix the test name in so sibling tests draw distinct streams.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            Config {
                cases,
                seed: base ^ h,
                max_rejects: 64 * cases,
            }
        }
    }
}

use test_runner::TestRng;

/// A source of values of one type. The sole operation is sampling; real
/// proptest's value trees and shrinking are intentionally absent.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "anything goes" strategy ([`any`]).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only: uniform in [-1e9, 1e9] — the useful range
        // for numeric property tests without NaN plumbing.
        (rng.next_u64() as f64 / u64::MAX as f64 - 0.5) * 2e9
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — an arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full u64 domain: lo..=hi covers every value.
                        rng.next_u64() as $t
                    } else {
                        lo.wrapping_add(rng.below(span) as $t)
                    }
                }
            }
        )*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = rng.next_u64() as f64 / u64::MAX as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count specification for [`vec`]: a fixed size or a range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(strategy, size)` — a `Vec` whose length
    /// is drawn from `size` and whose elements come from `strategy`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + if span > 1 { rng.below(span) as usize } else { 0 };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Format helper used by the assert macros (keeps the macro bodies small).
pub fn fail_msg(kind: &str, detail: fmt::Arguments<'_>) -> test_runner::TestCaseError {
    test_runner::TestCaseError::Fail(format!("{kind}: {detail}"))
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::fail_msg(
                "prop_assert",
                format_args!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{:?} != {:?}: {}", l, r, format_args!($($fmt)+));
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{:?} == {:?}: {}", l, r, format_args!($($fmt)+));
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Reject(
                    ::std::string::String::from(stringify!($cond)),
                ),
            );
        }
    };
}

/// The test-defining macro. Each inner `fn name(pat in strategy, ..) { .. }`
/// becomes a zero-argument test that samples the strategies `cases` times.
/// The body runs in a closure returning `Result<(), TestCaseError>`, which
/// is what the `prop_*` macros early-return into.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config = $crate::test_runner::Config::from_env(stringify!($name));
                let mut rng = $crate::test_runner::TestRng::new(config.seed);
                let mut done = 0u32;
                let mut rejects = 0u32;
                while done < config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => done += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(why),
                        ) => {
                            rejects += 1;
                            if rejects > config.max_rejects {
                                panic!(
                                    "proptest '{}': too many prop_assume rejections ({}): {}",
                                    stringify!($name), rejects, why,
                                );
                            }
                        }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest '{}' case {} failed (seed {:#x}): {}",
                                stringify!($name), done, config.seed, msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// The macro pipeline works end to end.
        #[test]
        fn ranges_in_bounds(x in 10u64..20, y in 1u8..=3, v in collection::vec(any::<u16>(), 1..5)) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((1..=3).contains(&y));
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        /// prop_assume resamples rather than failing.
        #[test]
        fn assume_filters(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn determinism() {
        let mut a = crate::test_runner::TestRng::new(42);
        let mut b = crate::test_runner::TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
