//! The serializing cooperative scheduler.
//!
//! One schedule = one execution of the model closure. Every model thread
//! is a real OS thread, but at most one is ever *running*: the rest are
//! parked inside [`yield_point`] waiting for a grant. The controller (the
//! thread that called `explore`) repeatedly picks a runnable thread,
//! grants it, and waits for it to report back — paused at its next yield
//! point, blocked on a mutex/join, or finished. Scheduling decisions are
//! delegated to a [`Chooser`], which is where DFS/random/replay live.

use crate::rng::XorShift;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Panic payload used to force parked threads to unwind when a schedule
/// is aborted (failure elsewhere or step budget exhausted). Never
/// reported as a model failure.
pub(crate) struct ModelAbort;

/// What a model thread is doing, from the scheduler's point of view.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    /// Waiting for the mutex keyed by this address to be released.
    BlockedOnMutex(usize),
    /// Waiting for thread `tid` to finish (a `join`).
    BlockedOnThread(usize),
    Finished,
}

struct State {
    threads: Vec<Status>,
    /// The thread currently granted the CPU, if any.
    running: Option<usize>,
    /// Mutex ownership: address of the model `Mutex` -> holder tid.
    locks: HashMap<usize, usize>,
    /// First failure (panic message, was_deadlock).
    failure: Option<(String, bool)>,
    /// Set when the controller is tearing the schedule down; parked
    /// threads unwind with [`ModelAbort`] when they observe it.
    abort: bool,
    steps: usize,
    /// Step budget, mirrored here so the fast path in
    /// [`Shared::pause_and_wait`] can prune without the controller.
    max_steps: usize,
}

pub(crate) struct Shared {
    state: Mutex<State>,
    /// Model threads wait here for their grant.
    thread_cv: Condvar,
    /// The controller waits here for the granted thread to report back.
    ctrl_cv: Condvar,
}

thread_local! {
    /// Registration of the current OS thread as a model thread.
    static CURRENT: std::cell::RefCell<Option<(Arc<Shared>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

fn current() -> Option<(Arc<Shared>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// A scheduling point. Inside a model this parks the calling thread until
/// the scheduler grants it the next step; outside any model it is a
/// no-op. Instrumented primitives call this before every shared-memory
/// operation.
#[inline]
pub fn yield_point() {
    if let Some((shared, id)) = current() {
        shared.pause_and_wait(id);
    }
}

/// Whether the calling thread is a registered model thread.
#[inline]
pub(crate) fn in_model() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

impl Shared {
    fn new(max_steps: usize) -> Arc<Self> {
        Arc::new(Shared {
            state: Mutex::new(State {
                threads: Vec::new(),
                running: None,
                locks: HashMap::new(),
                failure: None,
                abort: false,
                steps: 0,
                max_steps,
            }),
            thread_cv: Condvar::new(),
            ctrl_cv: Condvar::new(),
        })
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, State> {
        // The scheduler's own mutex: a panicking model thread poisons it
        // only while holding it, which the wrapper never does.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Ends the calling thread's step and waits for its next grant.
    ///
    /// Fast path: when no *other* thread is runnable there is no
    /// scheduling decision to make (arity-1 choices don't branch the
    /// DFS), so the thread keeps the CPU without a controller
    /// round-trip. Steps still count so runaway spin loops hit the
    /// `max_steps` prune instead of hanging the exploration.
    fn pause_and_wait(&self, id: usize) {
        let mut st = self.lock_state();
        debug_assert_eq!(st.running, Some(id), "pause from a non-running thread");
        let others_runnable = st
            .threads
            .iter()
            .enumerate()
            .any(|(i, t)| i != id && *t == Status::Runnable);
        if !others_runnable && !st.abort && st.steps < st.max_steps {
            st.steps += 1;
            return;
        }
        st.running = None;
        self.ctrl_cv.notify_one();
        self.wait_for_grant(st, id);
    }

    /// Parks until `running == id`; unwinds with [`ModelAbort`] on abort.
    fn wait_for_grant(&self, mut st: std::sync::MutexGuard<'_, State>, id: usize) {
        loop {
            if st.abort {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            if st.running == Some(id) {
                return;
            }
            st = self
                .thread_cv
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Ends the step marking the thread blocked (on a mutex or a join);
    /// the controller will re-grant it once the condition can hold.
    fn block_and_wait(&self, id: usize, status: Status) {
        let mut st = self.lock_state();
        debug_assert_eq!(st.running, Some(id));
        st.threads[id] = status;
        st.running = None;
        self.ctrl_cv.notify_one();
        self.wait_for_grant(st, id);
    }

    /// Mutex acquisition protocol: retried each time the thread is
    /// granted, blocking in between. Returns once the lock is owned.
    pub(crate) fn lock_mutex(&self, id: usize, addr: usize) {
        loop {
            yield_point();
            let mut st = self.lock_state();
            if let std::collections::hash_map::Entry::Vacant(e) = st.locks.entry(addr) {
                e.insert(id);
                return;
            }
            drop(st);
            self.block_and_wait(id, Status::BlockedOnMutex(addr));
        }
    }

    /// Non-blocking acquisition attempt.
    pub(crate) fn try_lock_mutex(&self, id: usize, addr: usize) -> bool {
        yield_point();
        let mut st = self.lock_state();
        if let std::collections::hash_map::Entry::Vacant(e) = st.locks.entry(addr) {
            e.insert(id);
            true
        } else {
            false
        }
    }

    pub(crate) fn unlock_mutex(&self, id: usize, addr: usize) {
        let mut st = self.lock_state();
        let holder = st.locks.remove(&addr);
        debug_assert_eq!(holder, Some(id), "unlock of a mutex we do not hold");
        // Blocked threads become runnable; they re-race for the lock when
        // next granted (the controller may interleave another acquirer
        // first, which is exactly the nondeterminism we want to explore).
        for t in st.threads.iter_mut() {
            if *t == Status::BlockedOnMutex(addr) {
                *t = Status::Runnable;
            }
        }
    }

    /// Join protocol: block until `target` finishes.
    pub(crate) fn join_thread(&self, id: usize, target: usize) {
        loop {
            yield_point();
            let st = self.lock_state();
            if st.threads[target] == Status::Finished {
                return;
            }
            drop(st);
            self.block_and_wait(id, Status::BlockedOnThread(target));
        }
    }

    /// Registers a new model thread (caller provides the body wrapper).
    pub(crate) fn register_thread(self: &Arc<Self>) -> usize {
        let mut st = self.lock_state();
        st.threads.push(Status::Runnable);
        st.threads.len() - 1
    }

    /// Body executed by every model OS thread.
    pub(crate) fn run_thread_body<F: FnOnce()>(self: Arc<Self>, id: usize, f: F) {
        CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&self), id)));
        // Wait for the first grant before touching any shared state.
        {
            let st = self.lock_state();
            // A freshly spawned thread is not yet running; wait without
            // reporting a pause (we never had the CPU).
            self.wait_for_grant(st, id);
        }
        let result = catch_unwind(AssertUnwindSafe(f));
        let mut st = self.lock_state();
        st.threads[id] = Status::Finished;
        if let Err(payload) = result {
            if !payload.is::<ModelAbort>() {
                let message = panic_message(payload.as_ref());
                st.failure.get_or_insert((message, false));
            }
        }
        // Joiners waiting on us become runnable.
        for t in st.threads.iter_mut() {
            if *t == Status::BlockedOnThread(id) {
                *t = Status::Runnable;
            }
        }
        st.running = None;
        self.ctrl_cv.notify_one();
        CURRENT.with(|c| *c.borrow_mut() = None);
    }
}

/// Suppresses panic output from model threads: their panics are either
/// [`ModelAbort`] bookkeeping or invariant failures that the scheduler
/// captures and reports through [`crate::Failure`]. Installed once,
/// process-wide, delegating non-model panics to the previous hook.
fn install_panic_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<ModelAbort>() || in_model() {
                return;
            }
            prev(info);
        }));
    });
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked (non-string payload)".to_string()
    }
}

/// Spawns a model thread running `f`, returning its model tid and real
/// handle. Must be called by a registered model thread or the controller.
pub(crate) fn spawn_model_thread<F>(
    shared: &Arc<Shared>,
    f: F,
) -> (usize, std::thread::JoinHandle<()>)
where
    F: FnOnce() + Send + 'static,
{
    let id = shared.register_thread();
    let shared2 = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(format!("loom-model-{id}"))
        .spawn(move || shared2.run_thread_body(id, f))
        .expect("spawn model thread");
    (id, handle)
}

pub(crate) fn with_current_shared<R>(f: impl FnOnce(&Arc<Shared>, usize) -> R) -> Option<R> {
    current().map(|(shared, id)| f(&shared, id))
}

/// Scheduling decision source: picks one of `k` runnable threads.
pub(crate) trait Chooser {
    fn choose(&mut self, k: usize) -> usize;
}

pub(crate) struct RandomChooser {
    rng: XorShift,
    /// Choices made, for failure reports.
    pub(crate) trace: Vec<usize>,
}

impl RandomChooser {
    pub(crate) fn new(seed: u64) -> Self {
        RandomChooser {
            rng: XorShift::new(seed),
            trace: Vec::new(),
        }
    }
}

impl Chooser for RandomChooser {
    fn choose(&mut self, k: usize) -> usize {
        let c = (self.rng.next() % k as u64) as usize;
        self.trace.push(c);
        c
    }
}

pub(crate) struct DfsChooser {
    /// Forced prefix from the DFS frontier.
    prefix: Vec<(usize, usize)>,
    /// Full (arity, choice) trace of this schedule.
    trace: Vec<(usize, usize)>,
}

impl DfsChooser {
    pub(crate) fn new(prefix: Vec<(usize, usize)>) -> Self {
        DfsChooser {
            prefix,
            trace: Vec::new(),
        }
    }

    pub(crate) fn into_trace(self) -> Vec<(usize, usize)> {
        self.trace
    }
}

impl Chooser for DfsChooser {
    fn choose(&mut self, k: usize) -> usize {
        let pos = self.trace.len();
        let c = match self.prefix.get(pos) {
            // Arity can drift if the program is schedule-dependent;
            // clamp rather than panic so exploration stays total.
            Some(&(_, forced)) => forced.min(k - 1),
            None => 0,
        };
        self.trace.push((k, c));
        c
    }
}

/// Computes the next DFS frontier from a completed trace: increment the
/// deepest decision with an unexplored sibling, dropping everything
/// after it. `None` when the space is exhausted.
pub(crate) fn next_dfs_prefix(mut trace: Vec<(usize, usize)>) -> Option<Vec<(usize, usize)>> {
    while let Some(&(k, c)) = trace.last() {
        if c + 1 < k {
            let last = trace.len() - 1;
            trace[last] = (k, c + 1);
            return Some(trace);
        }
        trace.pop();
    }
    None
}

/// Outcome of one executed schedule.
pub(crate) struct ScheduleOutcome {
    pub(crate) failure: Option<(String, bool)>,
    pub(crate) steps: usize,
    pub(crate) pruned: bool,
}

/// Executes one schedule of `f` under `chooser`. The calling thread acts
/// as the controller; the closure runs as model thread 0.
pub(crate) fn run_schedule<F>(
    f: &Arc<F>,
    chooser: &mut dyn Chooser,
    max_steps: usize,
) -> ScheduleOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    assert!(
        !in_model(),
        "nested loom::model/explore calls are not supported"
    );
    install_panic_hook();
    let shared = Shared::new(max_steps);
    let root = Arc::clone(f);
    let (_, root_handle) = spawn_model_thread(&shared, move || root());
    let mut handles = vec![root_handle];
    let mut pruned = false;

    loop {
        let mut st = shared.lock_state();
        debug_assert!(st.running.is_none());
        if st.failure.is_some() {
            break;
        }
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter_map(|(i, t)| {
                match *t {
                    Status::Runnable => Some(i),
                    // Blocked threads are re-grantable once their
                    // condition can hold; finish/unlock already promoted
                    // them, so anything still Blocked stays parked.
                    _ => None,
                }
            })
            .collect();
        if runnable.is_empty() {
            let live = st
                .threads
                .iter()
                .filter(|t| **t != Status::Finished)
                .count();
            if live > 0 {
                st.failure = Some((
                    format!("deadlock: {live} thread(s) blocked with no runnable thread"),
                    true,
                ));
            }
            break;
        }
        if st.steps >= max_steps {
            pruned = true;
            break;
        }
        let tid = runnable[chooser.choose(runnable.len()).min(runnable.len() - 1)];
        st.running = Some(tid);
        st.steps += 1;
        shared.thread_cv.notify_all();
        while st.running.is_some() {
            st = shared.ctrl_cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        // Model threads may have spawned children during the step; their
        // real handles are collected lazily below via `thread::spawn`'s
        // bookkeeping — nothing to do here, children registered
        // themselves in `st.threads`.
    }

    // Tear down: unpark everything, let ModelAbort unwind parked threads.
    {
        let mut st = shared.lock_state();
        st.abort = true;
        shared.thread_cv.notify_all();
    }
    // Join only the root's real handle: child handles are owned by the
    // model's JoinHandle wrappers, which detach on drop; the abort flag
    // guarantees every parked child unwinds and exits promptly. Join the
    // root so `f`'s borrows (none, it's 'static) and the iteration's
    // side effects are done before the next schedule starts.
    for h in handles.drain(..) {
        let _ = h.join();
    }
    // Wait for every registered thread to reach Finished so no stray
    // child is still unwinding while the next schedule runs.
    loop {
        let st = shared.lock_state();
        if st.threads.iter().all(|t| *t == Status::Finished) {
            let failure = st.failure.clone();
            let steps = st.steps;
            return ScheduleOutcome {
                failure: if pruned && failure.is_none() {
                    None
                } else {
                    failure
                },
                steps,
                pruned,
            };
        }
        drop(st);
        std::thread::yield_now();
    }
}
