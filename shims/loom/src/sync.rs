//! Instrumented `std::sync` subset.
//!
//! Every type wraps its `std` counterpart; the only instrumentation is a
//! [`crate::yield_point`] before each shared-memory operation, which is
//! what lets the scheduler explore interleavings. Constructors stay
//! `const` so statics and `const fn new` in the code under test keep
//! compiling. Outside a model the yield is a no-op and behavior is
//! byte-for-byte `std`.

use crate::sched;
use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};

pub use std::sync::Arc;

/// Instrumented atomics (plus a re-exported [`Ordering`]). The model
/// serializes threads, so every explored execution is sequentially
/// consistent regardless of the ordering argument; orderings weaker than
/// `SeqCst` are accepted and passed through unchanged.
pub mod atomic {
    use crate::sched::yield_point;
    pub use std::sync::atomic::Ordering;

    macro_rules! instrumented_atomic {
        ($name:ident, $std:ty, $int:ty) => {
            /// Instrumented wrapper over the `std` atomic of the same name.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Creates a new atomic (const, usable in statics).
                #[inline]
                pub const fn new(v: $int) -> Self {
                    Self {
                        inner: <$std>::new(v),
                    }
                }

                #[inline]
                pub fn load(&self, order: Ordering) -> $int {
                    yield_point();
                    self.inner.load(order)
                }

                #[inline]
                pub fn store(&self, val: $int, order: Ordering) {
                    yield_point();
                    self.inner.store(val, order)
                }

                #[inline]
                pub fn swap(&self, val: $int, order: Ordering) -> $int {
                    yield_point();
                    self.inner.swap(val, order)
                }

                #[inline]
                pub fn compare_exchange(
                    &self,
                    current: $int,
                    new: $int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$int, $int> {
                    yield_point();
                    self.inner.compare_exchange(current, new, success, failure)
                }

                #[inline]
                pub fn compare_exchange_weak(
                    &self,
                    current: $int,
                    new: $int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$int, $int> {
                    yield_point();
                    // The model explores interleavings, not spurious CAS
                    // failures; strong semantics keep DFS spaces finite.
                    self.inner.compare_exchange(current, new, success, failure)
                }

                #[inline]
                pub fn fetch_or(&self, val: $int, order: Ordering) -> $int {
                    yield_point();
                    self.inner.fetch_or(val, order)
                }

                #[inline]
                pub fn fetch_and(&self, val: $int, order: Ordering) -> $int {
                    yield_point();
                    self.inner.fetch_and(val, order)
                }

                #[inline]
                pub fn fetch_xor(&self, val: $int, order: Ordering) -> $int {
                    yield_point();
                    self.inner.fetch_xor(val, order)
                }

                #[inline]
                pub fn fetch_update<F>(
                    &self,
                    set_order: Ordering,
                    fetch_order: Ordering,
                    f: F,
                ) -> Result<$int, $int>
                where
                    F: FnMut($int) -> Option<$int>,
                {
                    yield_point();
                    self.inner.fetch_update(set_order, fetch_order, f)
                }

                #[inline]
                pub fn get_mut(&mut self) -> &mut $int {
                    self.inner.get_mut()
                }

                #[inline]
                pub fn into_inner(self) -> $int {
                    self.inner.into_inner()
                }

                /// Raw pointer to the value. Accesses through it bypass
                /// the scheduler's instrumentation (callers route them
                /// to subsystems the model does not cover).
                #[inline]
                pub const fn as_ptr(&self) -> *mut $int {
                    self.inner.as_ptr()
                }

                /// The underlying `std` atomic — escape hatch for code
                /// handing the word to uninstrumented subsystems;
                /// operations through it are invisible to the scheduler.
                #[inline]
                pub const fn as_std(&self) -> &$std {
                    &self.inner
                }
            }
        };
    }

    /// Arithmetic fetch ops — integers only (`AtomicBool` lacks them).
    macro_rules! instrumented_arith {
        ($name:ident, $int:ty) => {
            impl $name {
                #[inline]
                pub fn fetch_add(&self, val: $int, order: Ordering) -> $int {
                    yield_point();
                    self.inner.fetch_add(val, order)
                }

                #[inline]
                pub fn fetch_sub(&self, val: $int, order: Ordering) -> $int {
                    yield_point();
                    self.inner.fetch_sub(val, order)
                }

                #[inline]
                pub fn fetch_max(&self, val: $int, order: Ordering) -> $int {
                    yield_point();
                    self.inner.fetch_max(val, order)
                }

                #[inline]
                pub fn fetch_min(&self, val: $int, order: Ordering) -> $int {
                    yield_point();
                    self.inner.fetch_min(val, order)
                }
            }
        };
    }

    instrumented_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    instrumented_atomic!(AtomicU8, std::sync::atomic::AtomicU8, u8);
    instrumented_atomic!(AtomicU16, std::sync::atomic::AtomicU16, u16);
    instrumented_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    instrumented_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    instrumented_atomic!(AtomicI64, std::sync::atomic::AtomicI64, i64);
    instrumented_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    instrumented_atomic!(AtomicIsize, std::sync::atomic::AtomicIsize, isize);

    instrumented_arith!(AtomicU8, u8);
    instrumented_arith!(AtomicU16, u16);
    instrumented_arith!(AtomicU32, u32);
    instrumented_arith!(AtomicU64, u64);
    instrumented_arith!(AtomicI64, i64);
    instrumented_arith!(AtomicUsize, usize);
    instrumented_arith!(AtomicIsize, isize);

    /// Instrumented `AtomicPtr<T>`.
    #[derive(Debug)]
    pub struct AtomicPtr<T> {
        inner: std::sync::atomic::AtomicPtr<T>,
    }

    impl<T> Default for AtomicPtr<T> {
        fn default() -> Self {
            Self::new(std::ptr::null_mut())
        }
    }

    impl<T> AtomicPtr<T> {
        #[inline]
        pub const fn new(p: *mut T) -> Self {
            AtomicPtr {
                inner: std::sync::atomic::AtomicPtr::new(p),
            }
        }

        #[inline]
        pub fn load(&self, order: Ordering) -> *mut T {
            yield_point();
            self.inner.load(order)
        }

        #[inline]
        pub fn store(&self, p: *mut T, order: Ordering) {
            yield_point();
            self.inner.store(p, order)
        }

        #[inline]
        pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
            yield_point();
            self.inner.swap(p, order)
        }

        #[inline]
        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            yield_point();
            self.inner.compare_exchange(current, new, success, failure)
        }

        #[inline]
        pub fn get_mut(&mut self) -> &mut *mut T {
            self.inner.get_mut()
        }

        #[inline]
        pub fn into_inner(self) -> *mut T {
            self.inner.into_inner()
        }
    }

    /// Instrumented memory fence: a scheduling point, then the real fence.
    #[inline]
    pub fn fence(order: Ordering) {
        yield_point();
        std::sync::atomic::fence(order)
    }
}

/// Instrumented mutex. Under a model, ownership is tracked by the
/// scheduler (keyed by the mutex's address) so a blocked acquirer parks
/// its model thread instead of blocking the one granted OS thread —
/// which is also how the scheduler detects AB-BA deadlocks.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]; releases model ownership on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    /// `Option` so `Drop` can release the `std` guard *before* releasing
    /// model ownership (the next owner must find the inner mutex free).
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(std::sync::Arc<sched::Shared>, usize, usize)>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex (const, usable in statics).
    #[inline]
    pub const fn new(t: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(t),
        }
    }

    #[inline]
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn addr(&self) -> usize {
        self as *const Mutex<T> as *const () as usize
    }

    /// Acquires the mutex; a blocking scheduling point under a model.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match sched::with_current_shared(|shared, id| (std::sync::Arc::clone(shared), id)) {
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    inner: Some(g),
                    model: None,
                }),
                Err(poison) => Err(PoisonError::new(MutexGuard {
                    inner: Some(poison.into_inner()),
                    model: None,
                })),
            },
            Some((shared, id)) => {
                let addr = self.addr();
                shared.lock_mutex(id, addr);
                // Model ownership is exclusive, so the inner mutex must
                // be free (its guard drops before ownership is released).
                let g = self
                    .inner
                    .try_lock()
                    .expect("model mutex ownership granted but std mutex still held");
                Ok(MutexGuard {
                    inner: Some(g),
                    model: Some((shared, id, addr)),
                })
            }
        }
    }

    /// Non-blocking acquisition; a scheduling point under a model.
    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        match sched::with_current_shared(|shared, id| (std::sync::Arc::clone(shared), id)) {
            None => match self.inner.try_lock() {
                Ok(g) => Ok(MutexGuard {
                    inner: Some(g),
                    model: None,
                }),
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
                Err(TryLockError::Poisoned(poison)) => {
                    Err(TryLockError::Poisoned(PoisonError::new(MutexGuard {
                        inner: Some(poison.into_inner()),
                        model: None,
                    })))
                }
            },
            Some((shared, id)) => {
                let addr = self.addr();
                if !shared.try_lock_mutex(id, addr) {
                    return Err(TryLockError::WouldBlock);
                }
                let g = self
                    .inner
                    .try_lock()
                    .expect("model mutex ownership granted but std mutex still held");
                Ok(MutexGuard {
                    inner: Some(g),
                    model: Some((shared, id, addr)),
                })
            }
        }
    }

    #[inline]
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after drop")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after drop")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release order matters: std guard first, model ownership second.
        // No yield here — Drop can run while unwinding on ModelAbort, and
        // a scheduling point would panic inside the panic.
        drop(self.inner.take());
        if let Some((shared, id, addr)) = self.model.take() {
            shared.unlock_mutex(id, addr);
        }
    }
}
