//! Tiny deterministic PRNG helpers: schedule choice needs speed and
//! reproducibility, not statistical quality.

/// xorshift64* — one `u64` of state, never zero.
pub(crate) struct XorShift(u64);

impl XorShift {
    pub(crate) fn new(seed: u64) -> Self {
        // Zero is a fixed point of xorshift; remap it.
        XorShift(if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed })
    }

    pub(crate) fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// splitmix64 finalizer over `base + i`: derives well-spread per-schedule
/// seeds from one base seed so `LOOM_SEED=<reported>` replays exactly.
pub(crate) fn split_mix(base: u64, i: u64) -> u64 {
    let mut z = base.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
