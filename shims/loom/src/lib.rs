//! Offline loom-style deterministic model checker.
//!
//! The real [loom](https://github.com/tokio-rs/loom) simulates the C11
//! memory model state-space; this vendored shim (the build container has
//! no crates.io access) takes the
//! [shuttle](https://github.com/awslabs/shuttle) approach instead:
//! instrumented atomics/locks run on **real OS threads serialized by a
//! cooperative scheduler** — exactly one model thread runs at a time, and
//! every instrumented operation is a *yield point* where the scheduler
//! picks which thread proceeds next. The explored semantics are therefore
//! sequentially consistent; what the checker exhausts is the space of
//! **interleavings**, which is where the table's protocol bugs (ABA,
//! lost-update, use-after-retire, torn-read escapes) live.
//!
//! Two exploration strategies:
//!
//! - [`Strategy::Dfs`] — exhaustive depth-first search over scheduling
//!   choices, bounded by `max_schedules`/`max_steps`. Right for small
//!   protocol kernels (two threads, tens of steps).
//! - [`Strategy::Random`] — seed-derived random walks. Right for whole
//!   data structures where DFS cannot finish; every failing walk prints a
//!   **replayable seed** (rerun with `LOOM_SEED=<seed>`).
//!
//! Outside [`model`]/[`explore`] every instrumented primitive is a
//! zero-cost passthrough to `std`, so code built with `--cfg
//! cuckoo_model` still runs normally when no model is active.
//!
//! Environment overrides honored by [`model`]: `LOOM_SEED` (replay one
//! specific random schedule), `LOOM_SCHEDULES`, `LOOM_MAX_STEPS`.

mod rng;
mod sched;

pub mod hint;
pub mod sync;
pub mod thread;

pub use sched::yield_point;

use std::sync::Arc;

/// Which part of the schedule space to walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Exhaustive bounded depth-first search over scheduler choices.
    Dfs,
    /// `max_schedules` random walks with seeds derived from the base seed.
    Random {
        /// Base seed; schedule `i` runs with `splitmix(base, i)`.
        base_seed: u64,
    },
    /// Replay exactly one random walk from a previously reported seed.
    Replay {
        /// The seed printed by a failing [`Strategy::Random`] run.
        seed: u64,
    },
}

/// Exploration bounds.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// How to pick schedules.
    pub strategy: Strategy,
    /// Maximum number of schedules to execute.
    pub max_schedules: usize,
    /// Maximum yield points per schedule before the run is pruned
    /// (guards against writer-storm spin loops exploding DFS).
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            strategy: Strategy::Random { base_seed: 0x5eed_cafe },
            max_schedules: 400,
            max_steps: 50_000,
        }
    }
}

impl Config {
    /// Exhaustive DFS over at most `max_schedules` schedules.
    pub fn dfs(max_schedules: usize) -> Self {
        Config {
            strategy: Strategy::Dfs,
            max_schedules,
            ..Config::default()
        }
    }

    /// `n` random walks from `base_seed`.
    pub fn random(base_seed: u64, n: usize) -> Self {
        Config {
            strategy: Strategy::Random { base_seed },
            max_schedules: n,
            ..Config::default()
        }
    }
}

/// A schedule that violated an invariant (a panic in a model thread or a
/// detected deadlock).
#[derive(Debug)]
pub struct Failure {
    /// Seed reproducing the failing schedule (random/replay strategies).
    pub seed: Option<u64>,
    /// The exact choice sequence of the failing schedule (DFS).
    pub schedule: Vec<usize>,
    /// Panic message, or a deadlock description.
    pub message: String,
    /// Whether the failure was a deadlock (every live thread blocked).
    pub deadlock: bool,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "model checking failed: {}", self.message)?;
        if self.deadlock {
            writeln!(f, "(deadlock: every live thread was blocked)")?;
        }
        match self.seed {
            Some(seed) => write!(
                f,
                "replay with: LOOM_SEED={seed} (schedule length {})",
                self.schedule.len()
            ),
            None => write!(f, "failing DFS choice sequence: {:?}", self.schedule),
        }
    }
}

/// Statistics from a completed exploration.
#[derive(Debug, Default, Clone, Copy)]
pub struct Stats {
    /// Schedules executed to completion.
    pub schedules: usize,
    /// Schedules cut short by the `max_steps` bound.
    pub pruned: usize,
    /// Total yield points across all schedules.
    pub steps: usize,
    /// Whether DFS exhausted the whole space within `max_schedules`.
    pub exhausted: bool,
}

/// Explores schedules of `f` under `config`; `Err` carries the first
/// failing schedule (with its replay seed) without panicking, so tests
/// can assert that the checker *does* catch a seeded bug.
pub fn explore<F>(config: Config, f: F) -> Result<Stats, Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut stats = Stats::default();
    match config.strategy {
        Strategy::Replay { seed } => {
            run_random_schedule(&f, seed, config.max_steps, &mut stats)?;
            stats.exhausted = false;
            Ok(stats)
        }
        Strategy::Random { base_seed } => {
            for i in 0..config.max_schedules {
                let seed = rng::split_mix(base_seed, i as u64);
                run_random_schedule(&f, seed, config.max_steps, &mut stats)?;
            }
            Ok(stats)
        }
        Strategy::Dfs => {
            // The DFS frontier: choices forced on the next schedule. Each
            // element is (arity, choice) of a past decision point.
            let mut prefix: Vec<(usize, usize)> = Vec::new();
            for _ in 0..config.max_schedules {
                let mut chooser = sched::DfsChooser::new(std::mem::take(&mut prefix));
                let outcome = sched::run_schedule(&f, &mut chooser, config.max_steps);
                stats.schedules += 1;
                stats.steps += outcome.steps;
                if outcome.pruned {
                    stats.pruned += 1;
                }
                let trace = chooser.into_trace();
                if let Some((message, deadlock)) = outcome.failure {
                    return Err(Failure {
                        seed: None,
                        schedule: trace.iter().map(|&(_, c)| c).collect(),
                        message,
                        deadlock,
                    });
                }
                match sched::next_dfs_prefix(trace) {
                    Some(next) => prefix = next,
                    None => {
                        stats.exhausted = true;
                        return Ok(stats);
                    }
                }
            }
            Ok(stats)
        }
    }
}

fn run_random_schedule<F>(
    f: &Arc<F>,
    seed: u64,
    max_steps: usize,
    stats: &mut Stats,
) -> Result<(), Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    let mut chooser = sched::RandomChooser::new(seed);
    let outcome = sched::run_schedule(f, &mut chooser, max_steps);
    stats.schedules += 1;
    stats.steps += outcome.steps;
    if outcome.pruned {
        stats.pruned += 1;
    }
    if let Some((message, deadlock)) = outcome.failure {
        return Err(Failure {
            seed: Some(seed),
            schedule: chooser.trace,
            message,
            deadlock,
        });
    }
    Ok(())
}

/// Explores `f` with [`Config::default`] (or `LOOM_*` environment
/// overrides) and panics with a replayable report on failure — the
/// loom-compatible entry point for model tests.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    model_with(config_from_env(Config::default()), f);
}

/// [`model`] with an explicit base config (still env-overridable).
pub fn model_with<F>(config: Config, f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    if let Err(failure) = explore(config_from_env(config), f) {
        panic!("{failure}");
    }
}

/// Applies `LOOM_SEED` / `LOOM_SCHEDULES` / `LOOM_MAX_STEPS` overrides.
pub fn config_from_env(mut config: Config) -> Config {
    if let Some(seed) = env_u64("LOOM_SEED") {
        config.strategy = Strategy::Replay { seed };
        config.max_schedules = 1;
    }
    if let Some(n) = env_u64("LOOM_SCHEDULES") {
        config.max_schedules = n as usize;
    }
    if let Some(n) = env_u64("LOOM_MAX_STEPS") {
        config.max_steps = n as usize;
    }
    config
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Classic lost-update race: two unsynchronized read-modify-writes.
    /// DFS must find the interleaving where both threads read 0.
    #[test]
    fn dfs_finds_lost_update() {
        let failure = explore(Config::dfs(10_000), || {
            let cell = Arc::new(sync::atomic::AtomicUsize::new(0));
            let t: Vec<_> = (0..2)
                .map(|_| {
                    let cell = Arc::clone(&cell);
                    thread::spawn(move || {
                        let v = cell.load(Ordering::SeqCst);
                        cell.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in t {
                h.join().unwrap();
            }
            assert_eq!(cell.load(Ordering::SeqCst), 2, "lost update");
        })
        .expect_err("DFS must find the lost-update interleaving");
        assert!(failure.message.contains("lost update"));
        assert!(!failure.deadlock);
    }

    #[test]
    fn random_finds_lost_update_and_seed_replays() {
        let body = || {
            let cell = Arc::new(sync::atomic::AtomicUsize::new(0));
            let t: Vec<_> = (0..2)
                .map(|_| {
                    let cell = Arc::clone(&cell);
                    thread::spawn(move || {
                        let v = cell.load(Ordering::SeqCst);
                        cell.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in t {
                h.join().unwrap();
            }
            assert_eq!(cell.load(Ordering::SeqCst), 2, "lost update");
        };
        let failure = explore(Config::random(7, 500), body).expect_err("random walk finds it");
        let seed = failure.seed.expect("random failures carry a seed");
        // The reported seed deterministically reproduces the failure.
        let replayed = explore(
            Config {
                strategy: Strategy::Replay { seed },
                max_schedules: 1,
                ..Config::default()
            },
            body,
        )
        .expect_err("replay must reproduce");
        assert_eq!(replayed.seed, Some(seed));
    }

    #[test]
    fn correct_cas_loop_passes_dfs() {
        explore(Config::dfs(20_000), || {
            let cell = Arc::new(sync::atomic::AtomicUsize::new(0));
            let t: Vec<_> = (0..2)
                .map(|_| {
                    let cell = Arc::clone(&cell);
                    thread::spawn(move || {
                        let mut v = cell.load(Ordering::SeqCst);
                        while let Err(cur) = cell.compare_exchange(
                            v,
                            v + 1,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        ) {
                            v = cur;
                        }
                    })
                })
                .collect();
            for h in t {
                h.join().unwrap();
            }
            assert_eq!(cell.load(Ordering::SeqCst), 2);
        })
        .expect("CAS increment has no failing interleaving");
    }

    #[test]
    fn mutex_provides_mutual_exclusion() {
        explore(Config::dfs(20_000), || {
            let m = Arc::new(sync::Mutex::new(0usize));
            let t: Vec<_> = (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    thread::spawn(move || {
                        let mut g = m.lock().unwrap();
                        *g += 1;
                    })
                })
                .collect();
            for h in t {
                h.join().unwrap();
            }
            assert_eq!(*m.lock().unwrap(), 2);
        })
        .expect("mutex counter cannot lose updates");
    }

    #[test]
    fn deadlock_is_detected_and_reported() {
        let failure = explore(Config::dfs(10_000), || {
            let a = Arc::new(sync::Mutex::new(()));
            let b = Arc::new(sync::Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t1 = thread::spawn(move || {
                let _ga = a2.lock().unwrap();
                let _gb = b2.lock().unwrap();
            });
            let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
            let t2 = thread::spawn(move || {
                let _gb = b3.lock().unwrap();
                let _ga = a3.lock().unwrap();
            });
            let _ = t1.join();
            let _ = t2.join();
        })
        .expect_err("AB-BA locking must deadlock in some schedule");
        assert!(failure.deadlock, "failure should be a deadlock: {failure}");
    }

    #[test]
    fn passthrough_outside_model() {
        // Instrumented primitives must work normally with no model active.
        let x = sync::atomic::AtomicUsize::new(1);
        assert_eq!(x.fetch_add(1, Ordering::SeqCst), 1);
        let m = sync::Mutex::new(5);
        assert_eq!(*m.lock().unwrap(), 5);
        yield_point(); // no-op
        static _CONST_CTOR: sync::atomic::AtomicUsize = sync::atomic::AtomicUsize::new(0);
    }

    #[test]
    fn spawned_threads_return_values_through_join() {
        explore(Config::dfs(1_000), || {
            let h = thread::spawn(|| 42usize);
            assert_eq!(h.join().unwrap(), 42);
        })
        .expect("trivial spawn/join");
    }

    /// A three-thread interleaving bug: needs depth, exercises the
    /// scheduler beyond pairs.
    #[test]
    fn three_thread_aba_is_found() {
        let failure = explore(Config::random(0xaba, 2_000), || {
            // A tiny freelist ABA: slot state FREE(0)/USED(1); a buggy
            // "delete" frees the slot before checking ownership.
            let state = Arc::new(sync::atomic::AtomicUsize::new(1));
            let frees = Arc::new(AtomicUsize::new(0)); // raw std: metadata only
            let t1 = {
                let (state, frees) = (Arc::clone(&state), Arc::clone(&frees));
                thread::spawn(move || {
                    // Buggy delete: unconditional free.
                    state.store(0, Ordering::SeqCst);
                    frees.fetch_add(1, Ordering::SeqCst);
                })
            };
            let t2 = {
                let (state, frees) = (Arc::clone(&state), Arc::clone(&frees));
                thread::spawn(move || {
                    // Evictor: claim USED -> free it.
                    if state
                        .compare_exchange(1, 0, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        frees.fetch_add(1, Ordering::SeqCst);
                    }
                })
            };
            t1.join().unwrap();
            t2.join().unwrap();
            assert!(
                frees.load(Ordering::SeqCst) <= 1,
                "slot freed twice (ABA)"
            );
        })
        .expect_err("double-free interleaving exists");
        assert!(failure.message.contains("freed twice"));
    }
}
