//! Model-aware `thread::spawn`/`JoinHandle`/`yield_now`.
//!
//! Inside a model, spawn registers a new model thread with the scheduler
//! (it runs on a real OS thread but only when granted); outside a model
//! everything passes straight through to `std::thread`.

use crate::sched;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

type Slot<T> = Arc<Mutex<Option<std::thread::Result<T>>>>;

enum Inner<T> {
    Real(std::thread::JoinHandle<T>),
    Model {
        shared: Arc<sched::Shared>,
        target: usize,
        slot: Slot<T>,
    },
}

/// Handle to a spawned thread; `join` returns the closure's value.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish. Inside a model this is a
    /// scheduling point that blocks the caller until the target's model
    /// thread reaches `Finished`.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Real(h) => h.join(),
            Inner::Model {
                shared,
                target,
                slot,
            } => {
                let id = sched::with_current_shared(|_, id| id)
                    .expect("model JoinHandle joined from outside the model");
                shared.join_thread(id, target);
                match slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
                    Some(result) => result,
                    // The target unwound via ModelAbort: the schedule is
                    // being torn down, so unwind ourselves too.
                    None => std::panic::panic_any(sched::ModelAbort),
                }
            }
        }
    }
}

/// Spawns `f`; a model thread when called inside a model, a real
/// `std::thread` otherwise.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let model = sched::with_current_shared(|shared, _| Arc::clone(shared));
    match model {
        None => JoinHandle {
            inner: Inner::Real(std::thread::spawn(f)),
        },
        Some(shared) => {
            let slot: Slot<T> = Arc::new(Mutex::new(None));
            let slot2 = Arc::clone(&slot);
            let (target, _os_handle) = sched::spawn_model_thread(&shared, move || {
                let result = catch_unwind(AssertUnwindSafe(f));
                match result {
                    Ok(v) => {
                        *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ok(v));
                    }
                    Err(payload) => {
                        if !payload.is::<sched::ModelAbort>() {
                            // Store a displayable error for join(), then
                            // re-raise so the scheduler records the
                            // failure even if the handle is never joined.
                            let msg = sched::panic_message(payload.as_ref());
                            *slot2.lock().unwrap_or_else(|e| e.into_inner()) =
                                Some(Err(Box::new(msg)));
                        }
                        resume_unwind(payload);
                    }
                }
            });
            // The OS handle detaches on drop; the scheduler's teardown
            // waits for every model thread to reach Finished, so no
            // thread outlives its schedule.
            JoinHandle {
                inner: Inner::Model {
                    shared,
                    target,
                    slot,
                },
            }
        }
    }
}

/// A scheduling point inside a model; `std::thread::yield_now` otherwise.
/// Spin-wait backoff loops route through this so a parked lock holder
/// cannot starve the spinner forever under the model.
pub fn yield_now() {
    if sched::with_current_shared(|_, _| ()).is_some() {
        sched::yield_point();
    } else {
        std::thread::yield_now();
    }
}
