//! Model-aware `std::hint` subset.

/// Busy-wait hint. Inside a model a spinning thread must not monopolize
/// the (single) granted CPU, so this is a scheduling point; outside it is
/// the real PAUSE hint.
pub fn spin_loop() {
    if crate::sched::with_current_shared(|_, _| ()).is_some() {
        crate::sched::yield_point();
    } else {
        std::hint::spin_loop();
    }
}
