//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the slice of criterion's API the benches use: [`Criterion`],
//! `benchmark_group`, `bench_function`, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Methodology: each benchmark does a calibration pass to pick an
//! iteration batch, a warmup (default 100 ms), then timed batches for the
//! measurement window (default 300 ms) and reports mean ns/iter plus the
//! fastest batch. No outlier analysis, no HTML reports. Knobs:
//! `CRITERION_WARMUP_MS`, `CRITERION_MEASURE_MS`.

use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches can `use criterion::black_box` as with the real
/// crate.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// How `iter_batched` amortizes setup; only a sizing hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn env_ms(name: &str, default: u64) -> Duration {
    Duration::from_millis(
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default),
    )
}

/// Timing loop driver handed to benchmark closures.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    /// (total_ns, iters, fastest_batch_ns_per_iter)
    result: Option<(u128, u64, f64)>,
}

impl Bencher {
    fn new(warmup: Duration, measure: Duration) -> Self {
        Bencher { warmup, measure, result: None }
    }

    /// Times `routine` back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit ~1 ms?
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let el = t.elapsed();
            if el > Duration::from_millis(1) || batch >= 1 << 24 {
                break;
            }
            batch *= 2;
        }
        let warm_end = Instant::now() + self.warmup;
        while Instant::now() < warm_end {
            for _ in 0..batch {
                black_box(routine());
            }
        }
        let mut total_ns = 0u128;
        let mut iters = 0u64;
        let mut fastest = f64::INFINITY;
        let end = Instant::now() + self.measure;
        while Instant::now() < end {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t.elapsed().as_nanos();
            total_ns += ns;
            iters += batch;
            let per = ns as f64 / batch as f64;
            if per < fastest {
                fastest = per;
            }
        }
        self.result = Some((total_ns, iters.max(1), fastest));
    }

    /// Times `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_end = Instant::now() + self.warmup;
        while Instant::now() < warm_end {
            let input = setup();
            black_box(routine(input));
        }
        let mut total_ns = 0u128;
        let mut iters = 0u64;
        let mut fastest = f64::INFINITY;
        let end = Instant::now() + self.measure;
        while Instant::now() < end {
            let input = setup();
            let t = Instant::now();
            let out = routine(input);
            let ns = t.elapsed().as_nanos();
            black_box(out);
            total_ns += ns;
            iters += 1;
            let per = ns as f64;
            if per < fastest {
                fastest = per;
            }
        }
        self.result = Some((total_ns, iters.max(1), fastest));
    }
}

/// Top-level driver; also returned by [`Criterion::benchmark_group`] so
/// group benches read identically to ungrouped ones.
pub struct Criterion {
    group: Option<String>,
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            group: None,
            warmup: env_ms("CRITERION_WARMUP_MS", 100),
            measure: env_ms("CRITERION_MEASURE_MS", 300),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.into() }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let label = match &self.group {
            Some(g) => format!("{g}/{id}"),
            None => id.to_string(),
        };
        let mut b = Bencher::new(self.warmup, self.measure);
        f(&mut b);
        match b.result {
            Some((total_ns, iters, fastest)) => {
                let mean = total_ns as f64 / iters as f64;
                println!("{label:<40} time: [{mean:>12.1} ns/iter]  fastest batch: {fastest:.1} ns/iter  ({iters} iters)");
            }
            None => println!("{label:<40} (no measurement recorded)"),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let prev = self.parent.group.replace(self.name.clone());
        self.parent.run_one(id, f);
        self.parent.group = prev;
        self
    }

    /// Compatibility no-ops for common group knobs.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records() {
        std::env::set_var("CRITERION_WARMUP_MS", "1");
        std::env::set_var("CRITERION_MEASURE_MS", "2");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
