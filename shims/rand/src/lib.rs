//! Offline placeholder for the `rand` crate.
//!
//! The container cannot reach crates.io, and no code in this workspace
//! calls `rand` — randomized tests and drivers use the in-tree
//! `workload::keygen::SplitMix64` (deterministic, seedable) instead. The
//! manifests keep the dependency edge so any future `rand` usage fails
//! loudly here rather than at the network layer; extend this shim (or
//! switch the caller to `SplitMix64`) if that happens.

/// A minimal deterministic generator, provided so quick experiments have
/// something to reach for. This is SplitMix64, not a CSPRNG.
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn deterministic() {
        let mut a = super::SmallRng::seed_from_u64(7);
        let mut b = super::SmallRng::seed_from_u64(7);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
