//! Offline placeholder for the `crossbeam` crate.
//!
//! The container cannot reach crates.io, and no code in this workspace
//! calls `crossbeam` — scoped concurrency uses `std::thread::scope`
//! (stable since 1.63) and channels use `std::sync::mpsc`. The manifests
//! keep the dependency edge so any future `crossbeam` usage fails loudly
//! here rather than at the network layer.
//!
//! `thread::scope` is aliased to the std implementation so the most
//! common crossbeam idiom compiles unchanged.

pub mod thread {
    /// `crossbeam::thread::scope` compatibility: forwards to
    /// `std::thread::scope`, wrapping the result in `Ok` to match
    /// crossbeam's `Result`-returning signature.
    pub fn scope<'env, F, T>(f: F) -> Result<T, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
    {
        Ok(std::thread::scope(f))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_works() {
        let mut x = 0;
        super::thread::scope(|s| {
            s.spawn(|| 1);
            x = 1;
        })
        .unwrap();
        assert_eq!(x, 1);
    }
}
