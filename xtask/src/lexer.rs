//! A small Rust lexer: classifies every source character as code,
//! comment, or literal content.
//!
//! Both static-analysis passes (the SAFETY lint, the memory-ordering
//! lint) and the mutation engine depend on this: a `SAFETY:` inside a
//! string must not satisfy the lint, an `unsafe` inside a comment must
//! not trigger it, and a mutation operator must never rewrite text
//! inside a comment or string literal (the failure mode of the `sed`
//! smokes this engine replaced).
//!
//! Tracked lexical structure: nested block comments, raw strings with
//! hashes (`r#"…"#`, `br##"…"##`), escapes (including the `\<newline>`
//! string line-continuation, which an earlier version of this lexer
//! mis-lexed by swallowing the newline and shifting every subsequent
//! line number), and the char-literal/lifetime ambiguity.

/// Lexical class of one source character.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Executable text, including string/char delimiters themselves.
    Code,
    /// Comment markers and comment text.
    Comment,
    /// The *contents* of string/char literals.
    Lit,
}

/// A fully classified source file: `chars[i]` has class `classes[i]`.
pub struct Lexed {
    pub chars: Vec<char>,
    pub classes: Vec<Class>,
}

/// Classifies every character of `src`.
pub fn lex(src: &str) -> Lexed {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        CharLit,
    }
    let chars: Vec<char> = src.chars().collect();
    let mut classes = vec![Class::Code; chars.len()];
    let mut st = St::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // Newlines are structural; a line comment ends here, every
            // other state continues across the line boundary.
            if st == St::LineComment {
                st = St::Code;
            }
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    st = St::LineComment;
                    classes[i] = Class::Comment;
                    classes[i + 1] = Class::Comment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(1);
                    classes[i] = Class::Comment;
                    classes[i + 1] = Class::Comment;
                    i += 2;
                } else if c == '"' {
                    // Raw string? Look back over '#'s for an `r` (or
                    // `br`) that begins the token.
                    let mut j = i;
                    let mut hashes = 0u32;
                    while j > 0 && chars[j - 1] == '#' {
                        hashes += 1;
                        j -= 1;
                    }
                    let is_raw = j > 0 && chars[j - 1] == 'r' && {
                        let k = j - 1;
                        if k == 0 || !is_ident(chars[k - 1]) {
                            true
                        } else {
                            // `br"…"`: a `b` prefix that itself starts
                            // the token.
                            chars[k - 1] == 'b' && (k == 1 || !is_ident(chars[k - 2]))
                        }
                    };
                    st = if is_raw { St::RawStr(hashes) } else { St::Str };
                    i += 1;
                } else if c == '\'' {
                    // Lifetime ('a) vs char literal ('x', '\n').
                    let c1 = chars.get(i + 1).copied();
                    let c2 = chars.get(i + 2).copied();
                    let is_char = match c1 {
                        Some('\\') => true,
                        Some(_) if c2 == Some('\'') => true,
                        _ => false,
                    };
                    if is_char {
                        st = St::CharLit;
                    }
                    i += 1;
                } else {
                    i += 1;
                }
            }
            St::LineComment => {
                classes[i] = Class::Comment;
                i += 1;
            }
            St::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                classes[i] = Class::Comment;
                if c == '*' && next == Some('/') {
                    classes[i + 1] = Class::Comment;
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    classes[i + 1] = Class::Comment;
                    st = St::BlockComment(depth + 1);
                    i += 2;
                } else {
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    classes[i] = Class::Lit;
                    // Consume the escaped character too — unless it is a
                    // newline (the `\<newline>` continuation), which the
                    // top of the loop must see to keep line counts true.
                    if matches!(chars.get(i + 1), Some(&n) if n != '\n') {
                        classes[i + 1] = Class::Lit;
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    st = St::Code;
                    i += 1;
                } else {
                    classes[i] = Class::Lit;
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let n = hashes as usize;
                    let closed = (0..n).all(|k| chars.get(i + 1 + k) == Some(&'#'));
                    if closed {
                        st = St::Code;
                        i += 1 + n;
                    } else {
                        classes[i] = Class::Lit;
                        i += 1;
                    }
                } else {
                    classes[i] = Class::Lit;
                    i += 1;
                }
            }
            St::CharLit => {
                if c == '\\' {
                    classes[i] = Class::Lit;
                    if matches!(chars.get(i + 1), Some(&n) if n != '\n') {
                        classes[i + 1] = Class::Lit;
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '\'' {
                    st = St::Code;
                    i += 1;
                } else {
                    classes[i] = Class::Lit;
                    i += 1;
                }
            }
        }
    }
    Lexed { chars, classes }
}

/// One source line after lexing: executable text with comments and
/// literal contents blanked out, plus the comment text found on it.
#[derive(Default, Clone)]
pub struct LexedLine {
    pub code: String,
    pub comment: String,
}

/// Strips comments and string/char literal contents, line by line.
pub fn lex_lines(src: &str) -> Vec<LexedLine> {
    let lexed = lex(src);
    let mut lines = vec![LexedLine::default()];
    for (&c, &class) in lexed.chars.iter().zip(lexed.classes.iter()) {
        if c == '\n' {
            lines.push(LexedLine::default());
            continue;
        }
        let line = lines.last_mut().expect("at least one line");
        match class {
            Class::Code => line.code.push(c),
            Class::Comment => line.comment.push(c),
            Class::Lit => {}
        }
    }
    lines
}

pub fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Word-boundary search for `word` in `code` starting at `from`.
pub fn find_word(code: &[char], from: usize, word: &str) -> Option<usize> {
    let w: Vec<char> = word.chars().collect();
    let mut i = from;
    while i + w.len() <= code.len() {
        if code[i..i + w.len()] == w[..] {
            let before_ok = i == 0 || !is_ident(code[i - 1]);
            let after_ok = i + w.len() == code.len() || !is_ident(code[i + w.len()]);
            if before_ok && after_ok {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

/// Blanks the code of every line inside a `#[cfg(test)] mod … { … }`
/// block, so lints scoped to product code (the unwrap forbid, the
/// ordering lint) skip test bodies. Comments are preserved (a tag in a
/// test comment still does not cover product sites — coverage is
/// line-window based and test code sits inside the blanked region).
pub fn blank_test_mods(lines: &mut [LexedLine]) {
    let mut i = 0;
    while i < lines.len() {
        let code = lines[i].code.trim();
        if !(code.starts_with("#[cfg(test)]") || code.starts_with("#[cfg(all(test")) {
            i += 1;
            continue;
        }
        // Find the `mod` item this attribute covers (allowing further
        // attributes/blank lines in between).
        let mut j = i + 1;
        while j < lines.len() {
            let c = lines[j].code.trim();
            if c.is_empty() || c.starts_with("#[") {
                j += 1;
                continue;
            }
            break;
        }
        let is_mod = j < lines.len() && {
            let c: Vec<char> = lines[j].code.trim().chars().collect();
            find_word(&c, 0, "mod") == Some(0)
                || (find_word(&c, 0, "pub").is_some() && find_word(&c, 0, "mod").is_some())
        };
        if !is_mod {
            i += 1;
            continue;
        }
        // Blank from the `mod` line until its braces balance.
        let mut depth = 0i64;
        let mut seen_open = false;
        while j < lines.len() {
            for ch in lines[j].code.chars() {
                if ch == '{' {
                    depth += 1;
                    seen_open = true;
                } else if ch == '}' {
                    depth -= 1;
                }
            }
            lines[j].code.clear();
            j += 1;
            if seen_open && depth <= 0 {
                break;
            }
        }
        i = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> String {
        lex_lines(src)
            .iter()
            .map(|l| l.code.clone())
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let src = "let a = r#\"unsafe { } // SAFETY: nope\"#;\nlet b = r\"x\";\n";
        let lines = lex_lines(src);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].comment.is_empty());
        assert!(!lines[1].code.contains('x'));
    }

    #[test]
    fn raw_byte_strings_and_multi_hash() {
        let src = "let a = br##\"tag \"# still in\"##; let x = 1;\n";
        let lines = lex_lines(src);
        assert!(lines[0].code.contains("let x = 1"), "{}", lines[0].code);
        assert!(!lines[0].code.contains("still in"));
    }

    #[test]
    fn raw_string_spanning_lines_keeps_line_numbers() {
        let src = "let a = r#\"line one\n// SAFETY: fake\nunsafe {}\n\"#;\nlet real = 2;\n";
        let lines = lex_lines(src);
        assert_eq!(lines.len(), 6);
        assert!(lines[1].comment.is_empty(), "comment inside raw string");
        assert!(lines[2].code.is_empty(), "unsafe inside raw string");
        assert!(lines[4].code.contains("let real = 2"));
    }

    #[test]
    fn string_line_continuation_keeps_line_numbers() {
        // Regression: the old lexer's escape handling skipped two chars
        // unconditionally, swallowing the newline of a `\<newline>`
        // continuation and shifting every later line number.
        let src = "let s = \"abc\\\n   def\";\nlet after = 1;\n";
        let lines = lex_lines(src);
        assert_eq!(lines.len(), 4, "three lines + trailing empty");
        assert!(lines[2].code.contains("let after = 1"), "{}", code_of(src));
        assert!(!lines[1].code.contains("def"), "continuation is literal");
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* unsafe { } */ still comment */ let x = 1;\n";
        let lines = lex_lines(src);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains("let x = 1"));
        assert!(lines[0].comment.contains("still comment"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(s: &'a str) -> char { let q = '\"'; let n = '\\n'; q }\n";
        let lines = lex_lines(src);
        // The quote inside the char literal must not open a string.
        assert!(lines[0].code.contains("let n ="));
        assert!(lines[0].code.contains("&'a str"));
    }

    #[test]
    fn escaped_quote_does_not_close_string() {
        let src = "let s = \"a\\\"b // not a comment\"; let y = 3;\n";
        let lines = lex_lines(src);
        assert!(lines[0].comment.is_empty());
        assert!(lines[0].code.contains("let y = 3"));
    }

    #[test]
    fn classes_align_with_chars() {
        let src = "let s = \"lit\"; // comment\n";
        let lexed = lex(src);
        assert_eq!(lexed.chars.len(), lexed.classes.len());
        let lit: String = lexed
            .chars
            .iter()
            .zip(&lexed.classes)
            .filter(|(_, &k)| k == Class::Lit)
            .map(|(&c, _)| c)
            .collect();
        assert_eq!(lit, "lit");
        let comment: String = lexed
            .chars
            .iter()
            .zip(&lexed.classes)
            .filter(|(_, &k)| k == Class::Comment)
            .map(|(&c, _)| c)
            .collect();
        assert_eq!(comment, "// comment");
    }

    #[test]
    fn blank_test_mods_blanks_only_test_code() {
        let src = "fn product() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { y.unwrap(); }\n\
                   }\n\
                   fn after() { z.unwrap(); }\n";
        let mut lines = lex_lines(src);
        blank_test_mods(&mut lines);
        assert!(lines[0].code.contains("unwrap"));
        assert!(lines[3].code.is_empty(), "test body blanked");
        assert!(lines[5].code.contains("unwrap"), "code after mod kept");
    }
}
