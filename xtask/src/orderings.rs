//! Memory-ordering lint: every atomic-op site in product code must
//! carry a machine-checkable justification.
//!
//! The paper's performance rests on deliberately weak orderings (seqlock
//! stamps, tag probes outside locks, hole-backwards displacement), and
//! the argument for each lives in DESIGN.md §5d. This lint closes the
//! loop between that prose table and the code:
//!
//! * `xtask/orderings.toml` is the machine-readable manifest: one rule
//!   per §5d row (plus rules for the other crates' protocols), each with
//!   the *exact* ordering sequence its sites must use.
//! * Every non-`SeqCst` atomic site must carry an `// ORDERING: <rule>`
//!   tag (same line or within [`ORDERING_WINDOW`] lines above) resolving
//!   to a rule whose `exact`/`allows` set admits the site's orderings.
//!   Silently weakening `Release` → `Relaxed` at a tagged site therefore
//!   fails this lint — statically, before any test runs. The mutation
//!   engine (`xtask mutate`) proves that property by applying exactly
//!   those weakenings and requiring this check to kill them.
//! * `SeqCst` needs no tag off the hot path (it is never *too weak*),
//!   but on the hot-path files ([`HOT_FILES`]) it must be tagged with a
//!   rule marked `seqcst = true` — a cycle-level cost needs the same
//!   quality of argument as a weakening.
//! * A `Relaxed` store/swap to anything that smells like a pointer or
//!   length publication ([`PUBLISH_WORDS`], `into_raw`) is flagged
//!   unless its rule opts in with `relaxed_publish = true`.
//! * Files that are wholly statistics counters may use a file-level
//!   `// ORDERING-FILE: <rule>` directive; it covers only all-`Relaxed`
//!   sites and only through rules marked `blanket = true`.
//! * The committed inventory (`xtask/orderings-inventory.tsv`) pins the
//!   per-(file, rule, sequence) site counts, so *removing* an atomic or
//!   a fence is also a static failure until the inventory is
//!   regenerated (`xtask orderings --write-inventory`) and reviewed.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::lexer::{blank_test_mods, find_word, lex_lines, LexedLine};

/// How far above a site an `// ORDERING:` tag may sit.
pub const ORDERING_WINDOW: usize = 6;

/// Files on the per-operation hot path: `SeqCst` here needs an explicit
/// `seqcst = true` rule (cold-path files like `map.rs` use untagged
/// `SeqCst` freely — see the §5d migration row for why that is cheap).
const HOT_FILES: &[&str] = &[
    "crates/cuckoo/src/sync.rs",
    "crates/cuckoo/src/read.rs",
    "crates/cuckoo/src/bucket.rs",
    "crates/cuckoo/src/search/exec.rs",
    "crates/cuckoo/src/optimistic.rs",
];

/// Receiver identifiers that suggest a pointer/length publication.
const PUBLISH_WORDS: &[&str] = &[
    "ptr", "storage", "migration", "head", "tail", "next", "top", "len",
];

const ORDERING_NAMES: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One manifest rule.
#[derive(Debug, Default, Clone)]
pub struct Rule {
    pub id: String,
    pub summary: String,
    pub pairs: String,
    /// Exact ordering sequence a covered site must use (strongest form:
    /// any change at the site, weakening or strengthening, is caught).
    pub exact: Option<Vec<String>>,
    /// Orderings a covered site may use (set containment) when `exact`
    /// is not given.
    pub allows: Vec<String>,
    /// May be used as a file-level directive for all-Relaxed sites.
    pub blanket: bool,
    /// Justifies `SeqCst` on hot-path files.
    pub seqcst: bool,
    /// Justifies a publication-shaped `Relaxed` store.
    pub relaxed_publish: bool,
}

/// Parses the manifest (a deliberately small TOML subset: `[[rule]]`
/// tables with string / bool / string-array values — no external dep).
pub fn parse_manifest(text: &str) -> Result<Vec<Rule>, String> {
    let mut rules: Vec<Rule> = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[rule]]" {
            rules.push(Rule::default());
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("orderings.toml:{}: expected `key = value`", ln + 1));
        };
        let rule = rules
            .last_mut()
            .ok_or_else(|| format!("orderings.toml:{}: key before first [[rule]]", ln + 1))?;
        let (key, value) = (key.trim(), value.trim());
        let parse_str = |v: &str| -> Result<String, String> {
            v.strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .map(str::to_string)
                .ok_or_else(|| format!("orderings.toml:{}: expected a quoted string", ln + 1))
        };
        let parse_list = |v: &str| -> Result<Vec<String>, String> {
            let inner = v
                .strip_prefix('[')
                .and_then(|v| v.strip_suffix(']'))
                .ok_or_else(|| format!("orderings.toml:{}: expected a [list]", ln + 1))?;
            inner
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(parse_str)
                .collect()
        };
        match key {
            "id" => rule.id = parse_str(value)?,
            "summary" => rule.summary = parse_str(value)?,
            "pairs" => rule.pairs = parse_str(value)?,
            "exact" => rule.exact = Some(parse_list(value)?),
            "allows" => rule.allows = parse_list(value)?,
            "blanket" => rule.blanket = value == "true",
            "seqcst" => rule.seqcst = value == "true",
            "relaxed_publish" => rule.relaxed_publish = value == "true",
            other => {
                return Err(format!("orderings.toml:{}: unknown key `{other}`", ln + 1));
            }
        }
    }
    let mut seen = BTreeSet::new();
    for r in &rules {
        if r.id.is_empty() {
            return Err("orderings.toml: rule with empty id".into());
        }
        if r.summary.is_empty() {
            return Err(format!("orderings.toml: rule `{}` needs a summary", r.id));
        }
        if !seen.insert(r.id.clone()) {
            return Err(format!("orderings.toml: duplicate rule id `{}`", r.id));
        }
        for o in r.exact.iter().flatten().chain(r.allows.iter()) {
            if !ORDERING_NAMES.contains(&o.as_str()) {
                return Err(format!("orderings.toml: rule `{}`: bad ordering `{o}`", r.id));
            }
        }
        if r.exact.is_none() && r.allows.is_empty() {
            return Err(format!(
                "orderings.toml: rule `{}` needs `exact` or `allows`",
                r.id
            ));
        }
        if r.blanket {
            let all_relaxed = r
                .exact
                .as_deref()
                .unwrap_or(&r.allows)
                .iter()
                .all(|o| o == "Relaxed");
            if !all_relaxed {
                return Err(format!(
                    "orderings.toml: blanket rule `{}` may only admit Relaxed",
                    r.id
                ));
            }
        }
    }
    Ok(rules)
}

/// One atomic-op site: a maximal run of consecutive ordering-bearing
/// lines belonging to one call (continuation lines end with `,` or `(`).
#[derive(Debug)]
struct Site {
    /// 1-based first line.
    first: usize,
    /// 1-based last line.
    last: usize,
    /// `Ordering::X` tokens in source order.
    seq: Vec<String>,
    /// Whether the site looks like a Relaxed pointer/len publication.
    publishy: bool,
}

fn orderings_on_line(code: &str) -> Vec<String> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = find_word(&chars, from, "Ordering") {
        from = pos + "Ordering".len();
        if chars.get(from) == Some(&':') && chars.get(from + 1) == Some(&':') {
            let start = from + 2;
            let mut end = start;
            while end < chars.len() && crate::lexer::is_ident(chars[end]) {
                end += 1;
            }
            let name: String = chars[start..end].iter().collect();
            if ORDERING_NAMES.contains(&name.as_str()) {
                out.push(name);
            }
            from = end;
        }
    }
    out
}

fn is_publishy(code: &str) -> bool {
    if !code.contains("Ordering::Relaxed") {
        return false;
    }
    let call = [".store(", ".swap("].iter().filter_map(|p| code.find(p)).min();
    let Some(pos) = call else {
        return false;
    };
    let recv = &code[..pos];
    if code.contains("into_raw") {
        return true;
    }
    let chars: Vec<char> = recv.chars().collect();
    PUBLISH_WORDS
        .iter()
        .any(|w| find_word(&chars, 0, w).is_some())
}

fn extract_sites(lines: &[LexedLine]) -> Vec<Site> {
    let mut sites = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let seq = orderings_on_line(&lines[i].code);
        if seq.is_empty() {
            i += 1;
            continue;
        }
        let first = i;
        let mut all = seq;
        let mut text = lines[i].code.clone();
        let mut last = i;
        // Continuation: the next line carries orderings of the same
        // (multi-line) call when this line is syntactically unfinished.
        while last + 1 < lines.len() {
            let trimmed = lines[last].code.trim_end();
            if !(trimmed.ends_with(',') || trimmed.ends_with('(')) {
                break;
            }
            let next = orderings_on_line(&lines[last + 1].code);
            if next.is_empty() {
                break;
            }
            all.extend(next);
            text.push(' ');
            text.push_str(&lines[last + 1].code);
            last += 1;
        }
        sites.push(Site {
            first: first + 1,
            last: last + 1,
            seq: all,
            publishy: is_publishy(&text),
        });
        i = last + 1;
    }
    sites
}

/// Tag ids on a comment line (`// ORDERING: a, b — prose`), if any.
fn tag_ids(comment: &str) -> Option<Vec<String>> {
    let pos = comment.find("ORDERING:")?;
    if comment.contains("ORDERING-FILE:") {
        return None;
    }
    let rest = &comment[pos + "ORDERING:".len()..];
    // Prose may follow after an em-dash, double-dash, or parenthesis.
    let rest = rest
        .split(['—', '('])
        .next()
        .unwrap_or("")
        .split("--")
        .next()
        .unwrap_or("");
    let ids: Vec<String> = rest
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if ids.is_empty() {
        None
    } else {
        Some(ids)
    }
}

fn file_directive(lines: &[LexedLine]) -> Option<String> {
    for l in lines {
        if let Some(pos) = l.comment.find("ORDERING-FILE:") {
            let rest = l.comment[pos + "ORDERING-FILE:".len()..].trim();
            let id: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '_'))
                .collect();
            if !id.is_empty() {
                return Some(id);
            }
        }
    }
    None
}

/// Inventory entry: (file, rule, ordering sequence) → site count.
pub type Inventory = BTreeMap<(String, String, String), usize>;

pub struct Outcome {
    pub violations: Vec<String>,
    pub inventory: Inventory,
}

/// Why a rule failed to admit a site (for error messages).
fn rule_mismatch(rule: &Rule, site: &Site, hot: bool) -> Option<String> {
    if let Some(exact) = &rule.exact {
        if &site.seq != exact {
            return Some(format!(
                "orderings [{}] (exact [{}])",
                site.seq.join(", "),
                exact.join(", ")
            ));
        }
    } else {
        for o in &site.seq {
            if !rule.allows.contains(o) {
                return Some(format!(
                    "ordering {o} not in allows [{}]",
                    rule.allows.join(", ")
                ));
            }
        }
    }
    if hot && site.seq.iter().any(|o| o == "SeqCst") && !rule.seqcst {
        return Some("SeqCst on a hot-path file needs a rule with seqcst = true".into());
    }
    if site.publishy && !rule.relaxed_publish {
        return Some(
            "Relaxed store/swap to a pointer/len-like target needs relaxed_publish = true".into(),
        );
    }
    None
}

/// Lints one already-lexed file against the manifest. Returns the
/// violations and fills `inventory`; `used_rules` records manifest
/// coverage.
fn lint_file(
    path: &str,
    lines: &[LexedLine],
    rules: &BTreeMap<String, Rule>,
    inventory: &mut Inventory,
    used_rules: &mut BTreeSet<String>,
) -> Vec<String> {
    let mut violations = Vec::new();
    let hot = HOT_FILES.contains(&path);
    let sites = extract_sites(lines);
    let directive = file_directive(lines);
    if let Some(id) = &directive {
        match rules.get(id) {
            Some(r) if !r.blanket => violations.push(format!(
                "{path}: ORDERING-FILE rule `{id}` is not marked blanket = true"
            )),
            Some(_) => {}
            None => violations.push(format!("{path}: unknown ORDERING-FILE rule `{id}`")),
        }
    }
    // Tag lines (0-based) → ids.
    let mut tags: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for (ln, l) in lines.iter().enumerate() {
        if let Some(ids) = tag_ids(&l.comment) {
            tags.insert(ln, ids);
        }
    }
    let mut used_tags: BTreeSet<usize> = BTreeSet::new();

    for site in &sites {
        // Nearest covering tag: same lines as the site, else up to
        // ORDERING_WINDOW lines above its first line.
        let lo = site.first.saturating_sub(1 + ORDERING_WINDOW);
        let covering = (lo..site.last)
            .rev()
            .find(|ln| tags.contains_key(ln));
        let all_seqcst = site.seq.iter().all(|o| o == "SeqCst");
        let all_relaxed = site.seq.iter().all(|o| o == "Relaxed");
        let loc = format!("{path}:{}", site.first);

        if let Some(tag_ln) = covering {
            used_tags.insert(tag_ln);
            let ids = &tags[&tag_ln];
            let mut errs = Vec::new();
            let mut matched = None;
            for id in ids {
                match rules.get(id) {
                    None => errs.push(format!("unknown rule `{id}`")),
                    Some(rule) => match rule_mismatch(rule, site, hot) {
                        None => {
                            matched = Some(id.clone());
                            break;
                        }
                        Some(why) => errs.push(format!("`{id}`: {why}")),
                    },
                }
            }
            for id in ids {
                used_rules.insert(id.clone());
            }
            match matched {
                Some(id) => {
                    *inventory
                        .entry((path.to_string(), id, site.seq.join("+")))
                        .or_default() += 1;
                }
                None => violations.push(format!(
                    "{loc}: site [{}] does not satisfy its ORDERING tag ({})",
                    site.seq.join(", "),
                    errs.join("; ")
                )),
            }
        } else if all_seqcst && !hot {
            // SeqCst is never too weak; off the hot path it needs no tag.
            *inventory
                .entry((path.to_string(), "-".into(), site.seq.join("+")))
                .or_default() += 1;
        } else if all_relaxed && directive.is_some() && !site.publishy {
            let id = directive.clone().expect("checked above");
            used_rules.insert(id.clone());
            *inventory
                .entry((path.to_string(), id, site.seq.join("+")))
                .or_default() += 1;
        } else {
            let why = if all_seqcst {
                "SeqCst on a hot-path file: tag it with a rule marked seqcst = true \
                 or move the work off the hot path"
            } else if site.publishy {
                "Relaxed publication of a pointer/len-like target: tag it with a rule \
                 marked relaxed_publish = true (or strengthen the ordering)"
            } else {
                "non-SeqCst atomic without an `// ORDERING: <rule>` tag (see xtask/orderings.toml)"
            };
            violations.push(format!("{loc}: [{}] {why}", site.seq.join(", ")));
        }
    }

    for (ln, ids) in &tags {
        if !used_tags.contains(ln) {
            violations.push(format!(
                "{path}:{}: dangling ORDERING tag `{}` (no atomic site on the tagged \
                 line or within {ORDERING_WINDOW} lines below)",
                ln + 1,
                ids.join(", ")
            ));
        }
    }
    violations
}

/// Lints a set of in-memory sources (the selftest entry point).
pub fn lint_sources(rules: &[Rule], files: &[(&str, &str)]) -> Outcome {
    let rule_map: BTreeMap<String, Rule> =
        rules.iter().map(|r| (r.id.clone(), r.clone())).collect();
    let mut inventory = Inventory::new();
    let mut used = BTreeSet::new();
    let mut violations = Vec::new();
    for (path, src) in files {
        let mut lines = lex_lines(src);
        blank_test_mods(&mut lines);
        violations.extend(lint_file(path, &lines, &rule_map, &mut inventory, &mut used));
    }
    for r in rules {
        if !used.contains(&r.id) {
            violations.push(format!(
                "orderings.toml: rule `{}` matches no site (delete it or tag its sites)",
                r.id
            ));
        }
    }
    Outcome {
        violations,
        inventory,
    }
}

/// Source roots the ordering lint covers: every workspace member's
/// `src/` (tests, benches, and examples are exempt — test-only atomics
/// carry no product invariant).
pub fn lint_roots(root: &Path) -> Vec<std::path::PathBuf> {
    let mut roots = vec![root.join("src")];
    for parent in ["crates", "shims"] {
        let Ok(entries) = std::fs::read_dir(root.join(parent)) else {
            continue;
        };
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    roots.sort();
    roots
}

/// Runs the lint over the workspace. Does not compare the inventory —
/// callers decide (check vs regenerate).
pub fn analyze(root: &Path) -> Outcome {
    let manifest_path = root.join("xtask/orderings.toml");
    let rules = match std::fs::read_to_string(&manifest_path) {
        Ok(text) => match parse_manifest(&text) {
            Ok(r) => r,
            Err(e) => {
                return Outcome {
                    violations: vec![e],
                    inventory: Inventory::new(),
                }
            }
        },
        Err(e) => {
            return Outcome {
                violations: vec![format!("{}: unreadable: {e}", manifest_path.display())],
                inventory: Inventory::new(),
            }
        }
    };
    let mut sources = Vec::new();
    for dir in lint_roots(root) {
        for file in crate::rust_files(&dir) {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .display()
                .to_string();
            match std::fs::read_to_string(&file) {
                Ok(src) => sources.push((rel, src)),
                Err(e) => {
                    return Outcome {
                        violations: vec![format!("{rel}: unreadable: {e}")],
                        inventory: Inventory::new(),
                    }
                }
            }
        }
    }
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(p, s)| (p.as_str(), s.as_str()))
        .collect();
    lint_sources(&rules, &refs)
}

pub fn render_inventory(inv: &Inventory) -> String {
    let mut out = String::from(
        "# Atomic-site inventory — generated by `cargo xtask orderings --write-inventory`.\n\
         # file\trule\torderings\tsites   (`-` = untagged SeqCst off the hot path)\n",
    );
    for ((file, rule, seq), count) in inv {
        out.push_str(&format!("{file}\t{rule}\t{seq}\t{count}\n"));
    }
    out
}

pub fn parse_inventory(text: &str) -> Inventory {
    let mut inv = Inventory::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() == 4 {
            if let Ok(n) = cols[3].parse() {
                inv.insert((cols[0].into(), cols[1].into(), cols[2].into()), n);
            }
        }
    }
    inv
}

/// Full check: lint + committed-inventory comparison. The inventory diff
/// is what turns *removals* (a deleted fence, a dropped atomic) into
/// static failures — the lint alone only sees sites that still exist.
pub fn check(root: &Path) -> Vec<String> {
    let Outcome {
        mut violations,
        inventory,
    } = analyze(root);
    let inv_path = root.join("xtask/orderings-inventory.tsv");
    match std::fs::read_to_string(&inv_path) {
        Ok(text) => {
            let committed = parse_inventory(&text);
            for (key, n) in &inventory {
                match committed.get(key) {
                    Some(m) if m == n => {}
                    Some(m) => violations.push(format!(
                        "inventory drift: {} [{}] rule {}: {n} site(s) in source, {m} committed \
                         (review, then `cargo xtask orderings --write-inventory`)",
                        key.0, key.2, key.1
                    )),
                    None => violations.push(format!(
                        "inventory drift: {} [{}] rule {}: new site(s) not in committed inventory \
                         (review, then `cargo xtask orderings --write-inventory`)",
                        key.0, key.2, key.1
                    )),
                }
            }
            for key in committed.keys() {
                if !inventory.contains_key(key) {
                    violations.push(format!(
                        "inventory drift: {} [{}] rule {}: committed site(s) no longer in source \
                         (an atomic or fence was removed — review, then \
                         `cargo xtask orderings --write-inventory`)",
                        key.0, key.2, key.1
                    ));
                }
            }
        }
        Err(e) => violations.push(format!(
            "{}: unreadable ({e}) — run `cargo xtask orderings --write-inventory`",
            inv_path.display()
        )),
    }
    violations
}

/// Regenerates the committed inventory. Fails (returning the lint
/// violations) if the lint itself does not pass — the inventory must
/// only ever pin a clean state.
pub fn write_inventory(root: &Path) -> Result<usize, Vec<String>> {
    let Outcome {
        violations,
        inventory,
    } = analyze(root);
    if !violations.is_empty() {
        return Err(violations);
    }
    let n = inventory.values().sum();
    std::fs::write(
        root.join("xtask/orderings-inventory.tsv"),
        render_inventory(&inventory),
    )
    .map_err(|e| vec![format!("write inventory: {e}")])?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules() -> Vec<Rule> {
        parse_manifest(
            r#"
[[rule]]
id = "pub.rel"
summary = "publication store"
exact = ["Release"]

[[rule]]
id = "cas.acq"
summary = "CAS acquire/relaxed"
exact = ["Acquire", "Relaxed"]

[[rule]]
id = "ctr"
summary = "statistics counters"
allows = ["Relaxed"]
blanket = true

[[rule]]
id = "hot.sc"
summary = "justified hot-path SeqCst"
exact = ["SeqCst"]
seqcst = true
"#,
        )
        .expect("fixture manifest parses")
    }

    fn lint_one(path: &str, src: &str) -> Vec<String> {
        // Drop unused-rule noise: fixtures rarely use every rule.
        lint_sources(&rules(), &[(path, src)])
            .violations
            .into_iter()
            .filter(|v| !v.contains("matches no site"))
            .collect()
    }

    #[test]
    fn tagged_exact_site_passes_and_weakened_fails() {
        let good = "fn f(a: &AtomicU64) {\n    // ORDERING: pub.rel\n    a.store(1, Ordering::Release);\n}\n";
        assert!(lint_one("x.rs", good).is_empty());
        let weak = good.replace("Release", "Relaxed");
        let v = lint_one("x.rs", &weak);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("does not satisfy"));
    }

    #[test]
    fn untagged_non_seqcst_is_flagged() {
        let src = "fn f(a: &AtomicU64) { a.load(Ordering::Acquire); }\n";
        let v = lint_one("x.rs", src);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("without an `// ORDERING:"));
    }

    #[test]
    fn untagged_seqcst_off_hot_path_passes() {
        let src = "fn f(a: &AtomicU64) { a.load(Ordering::SeqCst); }\n";
        assert!(lint_one("crates/persist/src/x.rs", src).is_empty());
    }

    #[test]
    fn untagged_seqcst_on_hot_path_is_flagged() {
        let src = "fn f(a: &AtomicU64) { a.load(Ordering::SeqCst); }\n";
        let v = lint_one("crates/cuckoo/src/sync.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("hot-path"));
        let tagged = format!("// ORDERING: hot.sc\n{src}");
        assert!(lint_one("crates/cuckoo/src/sync.rs", &tagged).is_empty());
    }

    #[test]
    fn multiline_cas_is_one_site() {
        let src = "fn f(a: &AtomicU64) {\n    // ORDERING: cas.acq\n    a.compare_exchange(\n        0,\n        1,\n        Ordering::Acquire,\n        Ordering::Relaxed,\n    )\n}\n";
        assert!(lint_one("x.rs", src).is_empty(), "{:?}", lint_one("x.rs", src));
    }

    #[test]
    fn blanket_covers_relaxed_counters_only() {
        let src = "// ORDERING-FILE: ctr\nfn f(a: &AtomicU64) {\n    a.fetch_add(1, Ordering::Relaxed);\n    a.load(Ordering::Acquire);\n}\n";
        let v = lint_one("x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("Acquire"));
    }

    #[test]
    fn relaxed_pointer_publication_is_flagged() {
        let src = "// ORDERING-FILE: ctr\nfn f(p: &AtomicPtr<u8>, b: Box<u8>) {\n    p.store(Box::into_raw(b), Ordering::Relaxed);\n}\n";
        let v = lint_one("x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("publication"));
    }

    #[test]
    fn dangling_tag_is_flagged() {
        let src = "// ORDERING: pub.rel\nfn f() {}\n";
        let v = lint_one("x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("dangling"));
    }

    #[test]
    fn sites_in_test_mods_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(a: &AtomicU64) { a.load(Ordering::Acquire); }\n}\n";
        assert!(lint_one("x.rs", src).is_empty());
    }

    #[test]
    fn tag_in_string_does_not_count() {
        let src = "fn f(a: &AtomicU64) {\n    let _t = \"// ORDERING: pub.rel\";\n    a.store(1, Ordering::Release);\n}\n";
        let v = lint_one("x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn inventory_roundtrip_and_drift() {
        let out = lint_sources(
            &rules(),
            &[(
                "x.rs",
                "fn f(a: &AtomicU64) {\n    // ORDERING: pub.rel\n    a.store(1, Ordering::Release);\n}\n",
            )],
        );
        let text = render_inventory(&out.inventory);
        let parsed = parse_inventory(&text);
        assert_eq!(parsed, out.inventory);
        assert_eq!(
            parsed.get(&("x.rs".into(), "pub.rel".into(), "Release".into())),
            Some(&1)
        );
    }

    #[test]
    fn manifest_rejects_bad_rules() {
        assert!(parse_manifest("[[rule]]\nid = \"x\"\n").is_err(), "no summary");
        assert!(
            parse_manifest("[[rule]]\nid = \"x\"\nsummary = \"s\"\nexact = [\"Sloppy\"]\n")
                .is_err(),
            "bad ordering name"
        );
        assert!(
            parse_manifest(
                "[[rule]]\nid = \"x\"\nsummary = \"s\"\nallows = [\"Release\"]\nblanket = true\n"
            )
            .is_err(),
            "blanket must be Relaxed-only"
        );
    }

    /// Golden: the manifest's rule-id set. A rename or removal breaks
    /// every `// ORDERING:` tag referring to the old id, so it must show
    /// up here as a deliberate change, not slip through in a refactor.
    #[test]
    fn manifest_rule_ids_are_pinned() {
        let manifest = std::fs::read_to_string(
            Path::new(env!("CARGO_MANIFEST_DIR")).join("orderings.toml"),
        )
        .expect("xtask/orderings.toml readable");
        let rules = parse_manifest(&manifest).expect("manifest parses");
        let ids: Vec<&str> = rules.iter().map(|r| r.id.as_str()).collect();
        let pinned = [
            "seqlock.lock-acquire",
            "seqlock.unlock-release",
            "seqlock.read-begin",
            "seqlock.validate",
            "seqlock.advisory-probe",
            "epoch.seqcst",
            "alloc.unique-id",
            "bucket.meta-acquire",
            "bucket.meta-publish",
            "exec.scan-counter",
            "migration.chunk-claim",
            "migration.chunk-done",
            "migration.chunk-poll",
            "cold.seqcst",
            "publish.release-store",
            "publish.acquire-load",
            "handoff.acqrel-rmw",
            "advisory.relaxed",
            "stats.counter",
            "htm.racy-chunk",
            "simd_probe",
        ];
        assert_eq!(
            ids, pinned,
            "manifest rule ids changed — update this golden list *and* every tag using the old id"
        );
    }
}
