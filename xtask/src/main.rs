//! Repo automation: `cargo xtask check` is the static-analysis gate.
//!
//! Subcommands:
//!
//! * `check` — the full suite: SAFETY-comment lint, forbid-list,
//!   memory-ordering lint, lint-config audit, `cargo clippy -D
//!   warnings`, and a Miri pass over the single-threaded smoke tests
//!   (skipped with a notice when Miri is not installed — the container
//!   image has no nightly toolchain). Flags: `--no-clippy`, `--no-miri`
//!   to skip the slow/toolchain steps.
//! * `safety` — only the SAFETY-comment lint (fast inner loop).
//! * `forbid` — only the forbid-list scan.
//! * `orderings` — the memory-ordering lint (see [`orderings`]):
//!   every atomic site justified against `xtask/orderings.toml`, site
//!   inventory pinned in `xtask/orderings-inventory.tsv`
//!   (`--write-inventory` regenerates it after review).
//! * `mutate` — the mutation-testing engine (see [`mutate`]):
//!   `--ci` pinned subset, `--all` full ordering-weakening matrix,
//!   `--selftest` engine self-checks.
//! * `selftest` — prove the lint machinery catches violations: runs
//!   embedded good/bad fixtures through the same code paths CI relies
//!   on, failing if a bad fixture passes or a good one is flagged.
//!
//! The SAFETY lint enforces the repo discipline that every `unsafe`
//! site carries its proof obligation in-line: an `unsafe` block (or
//! `unsafe impl`/`unsafe trait`) needs a `// SAFETY:` comment within
//! the six lines above it, and an `unsafe fn` needs either a
//! `# Safety` section in its doc comment or a nearby `// SAFETY:`.
//! Comments and string literals are stripped by the [`lexer`] first, so
//! a "SAFETY:" inside a string does not satisfy the lint and an
//! "unsafe" inside a comment does not trigger it.

mod lexer;
mod mutate;
mod orderings;

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

use lexer::{blank_test_mods, find_word, is_ident, lex_lines, LexedLine};

/// Directories exempt from the SAFETY-comment discipline:
/// `crates/baselines` vendors reference baseline tables (chaining,
/// dense probing) kept close to their upstream shape for fair
/// comparison, and the non-loom shims mimic third-party crates'
/// shapes. Everything else under `crates/*/src`, `shims/loom/src`,
/// the root `src/`, and `xtask/src` is covered — newly added crates
/// are picked up automatically instead of rotting off a hand-kept
/// list (which is how `persist` and `metrics` escaped coverage).
const SAFETY_EXEMPT: &[&str] = &["crates/baselines"];

fn safety_roots(root: &Path) -> Vec<PathBuf> {
    let mut roots = vec![root.join("src"), root.join("xtask/src"), root.join("shims/loom/src")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let rel = format!("crates/{}", entry.file_name().to_string_lossy());
            if SAFETY_EXEMPT.contains(&rel.as_str()) {
                continue;
            }
            let src = entry.path().join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    roots.sort();
    roots
}

/// The forbid-list applies everywhere, baselines included.
const FORBID_ROOTS: &[&str] = &["crates", "shims", "src", "xtask/src"];

/// Crates whose *lib* code must not call `.unwrap(` — the PR 3
/// burn-down, continued: durability and the network front door are the
/// two places a panic becomes data loss or a dropped connection, so
/// every fallible site documents its invariant via `.expect("…")` or
/// propagates. Tests are exempt (`#[cfg(test)]` mods are blanked).
const UNWRAP_FORBID_ROOTS: &[&str] = &["crates/server/src", "crates/persist/src"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let flag = |f: &str| args.iter().any(|a| a == f);
    let root = repo_root();

    let ok = match cmd {
        "check" => run_check(&root, !flag("--no-clippy"), !flag("--no-miri")),
        "safety" => report("SAFETY lint", safety_lint(&root)),
        "forbid" => report("forbid-list", forbid_list(&root)),
        "orderings" if flag("--write-inventory") => match orderings::write_inventory(&root) {
            Ok(n) => {
                println!("memory-ordering lint: inventory regenerated ({n} sites)");
                true
            }
            Err(violations) => report("memory-ordering lint", violations),
        },
        "orderings" => report("memory-ordering lint", orderings::check(&root)),
        "mutate" if flag("--all") => mutate::run_all(&root),
        "mutate" if flag("--selftest") => mutate::run_selftest(&root),
        "mutate" => mutate::run_ci(&root),
        "selftest" => run_selftest(),
        _ => {
            eprintln!(
                "usage: cargo xtask <check [--no-clippy] [--no-miri] | safety | forbid \
                 | orderings [--write-inventory] | mutate [--ci|--all|--selftest] | selftest>"
            );
            return ExitCode::from(2);
        }
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn repo_root() -> PathBuf {
    // xtask is always invoked through cargo, so CARGO_MANIFEST_DIR is
    // xtask/ and the workspace root is its parent.
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .expect("xtask must be run via cargo (CARGO_MANIFEST_DIR unset)");
    Path::new(&manifest)
        .parent()
        .expect("xtask sits one level below the workspace root")
        .to_path_buf()
}

fn run_check(root: &Path, clippy: bool, miri: bool) -> bool {
    let mut ok = true;
    ok &= report("SAFETY lint", safety_lint(root));
    ok &= report("forbid-list", forbid_list(root));
    ok &= report("memory-ordering lint", orderings::check(root));
    ok &= report("lint-config audit", lint_config_audit(root));
    if clippy {
        ok &= run_step(
            root,
            "clippy",
            &["clippy", "--workspace", "--all-targets", "--", "-D", "warnings"],
        );
    }
    if miri {
        ok &= run_miri(root);
    }
    if ok {
        println!("xtask check: all gates passed");
    } else {
        eprintln!("xtask check: FAILED (see above)");
    }
    ok
}

fn report(name: &str, violations: Vec<String>) -> bool {
    if violations.is_empty() {
        println!("{name}: ok");
        true
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("{name}: {} violation(s)", violations.len());
        false
    }
}

fn run_step(root: &Path, name: &str, cargo_args: &[&str]) -> bool {
    println!("{name}: running `cargo {}`", cargo_args.join(" "));
    let status = Command::new(env!("CARGO"))
        .args(cargo_args)
        .current_dir(root)
        .status();
    match status {
        Ok(s) if s.success() => {
            println!("{name}: ok");
            true
        }
        Ok(s) => {
            eprintln!("{name}: FAILED ({s})");
            false
        }
        Err(e) => {
            eprintln!("{name}: could not run cargo: {e}");
            false
        }
    }
}

/// Miri runs the single-threaded `miri_` smoke tests in crates/cuckoo.
/// Gated: the container toolchain has no nightly/Miri, so absence is a
/// skip (with a notice), not a failure — CI installs the component.
fn run_miri(root: &Path) -> bool {
    let probe = Command::new(env!("CARGO"))
        .args(["miri", "--version"])
        .current_dir(root)
        .output();
    let available = matches!(&probe, Ok(o) if o.status.success());
    if !available {
        println!(
            "miri: not installed — skipped (rustup +nightly component add miri; CI runs this)"
        );
        return true;
    }
    run_step(
        root,
        "miri",
        &["miri", "test", "-p", "cuckoo", "--lib", "miri_"],
    )
}

// ---------------------------------------------------------------------
// SAFETY-comment lint
// ---------------------------------------------------------------------

fn safety_lint(root: &Path) -> Vec<String> {
    let mut violations = Vec::new();
    for dir in safety_roots(root) {
        for file in rust_files(&dir) {
            let src = match std::fs::read_to_string(&file) {
                Ok(s) => s,
                Err(e) => {
                    violations.push(format!("{}: unreadable: {e}", file.display()));
                    continue;
                }
            };
            let rel = file.strip_prefix(root).unwrap_or(&file).display().to_string();
            violations.extend(lint_source(&rel, &src));
        }
    }
    violations
}

fn forbid_list(root: &Path) -> Vec<String> {
    let mut violations = Vec::new();
    for dir in FORBID_ROOTS {
        for file in rust_files(&root.join(dir)) {
            let src = match std::fs::read_to_string(&file) {
                Ok(s) => s,
                Err(_) => continue,
            };
            let rel = file.strip_prefix(root).unwrap_or(&file).display().to_string();
            violations.extend(forbid_in_source(&rel, &src));
        }
    }
    for dir in UNWRAP_FORBID_ROOTS {
        for file in rust_files(&root.join(dir)) {
            let src = match std::fs::read_to_string(&file) {
                Ok(s) => s,
                Err(_) => continue,
            };
            let rel = file.strip_prefix(root).unwrap_or(&file).display().to_string();
            violations.extend(unwrap_forbid_in_source(&rel, &src));
        }
    }
    violations
}

fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// How far above an `unsafe` keyword a `// SAFETY:` comment may sit.
const SAFETY_WINDOW: usize = 6;

#[derive(Debug, PartialEq, Clone, Copy)]
enum UnsafeKind {
    Block,
    Fn,
    Impl,
    Trait,
    ExternBlock,
}

/// Finds every `unsafe` keyword in the lexed code and classifies it by
/// the next meaningful token.
fn unsafe_sites(lines: &[LexedLine]) -> Vec<(usize, UnsafeKind)> {
    let mut sites = Vec::new();
    for (ln, line) in lines.iter().enumerate() {
        let code: Vec<char> = line.code.chars().collect();
        let mut col = 0;
        while let Some(pos) = find_word(&code, col, "unsafe") {
            let kind = classify(lines, ln, pos + "unsafe".len());
            sites.push((ln, kind));
            col = pos + "unsafe".len();
        }
    }
    sites
}

/// Reads the token after an `unsafe` keyword (possibly on a later line).
fn classify(lines: &[LexedLine], ln: usize, col: usize) -> UnsafeKind {
    let mut line = ln;
    let mut chars: Vec<char> = lines[line].code.chars().collect();
    let mut i = col;
    loop {
        while i < chars.len() && chars[i].is_whitespace() {
            i += 1;
        }
        if i >= chars.len() {
            line += 1;
            if line >= lines.len() {
                return UnsafeKind::Block;
            }
            chars = lines[line].code.chars().collect();
            i = 0;
            continue;
        }
        if is_ident(chars[i]) {
            let start = i;
            while i < chars.len() && is_ident(chars[i]) {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            return match word.as_str() {
                "fn" => UnsafeKind::Fn,
                "impl" => UnsafeKind::Impl,
                "trait" => UnsafeKind::Trait,
                "extern" => UnsafeKind::ExternBlock,
                // e.g. `unsafe async fn` does not exist, but be tolerant.
                _ => UnsafeKind::Block,
            };
        }
        return UnsafeKind::Block;
    }
}

/// Whether a `// SAFETY:` comment covers line `ln` (same line or within
/// the window above).
fn has_safety_comment(lines: &[LexedLine], ln: usize) -> bool {
    let lo = ln.saturating_sub(SAFETY_WINDOW);
    lines[lo..=ln].iter().any(|l| l.comment.contains("SAFETY:"))
}

/// Whether the doc block immediately above line `ln` has a `# Safety`
/// section. Walks up over doc comments, attributes, and blank lines.
fn has_safety_doc(lines: &[LexedLine], ln: usize) -> bool {
    let mut i = ln;
    while i > 0 {
        i -= 1;
        let l = &lines[i];
        let code = l.code.trim();
        let comment = l.comment.trim_start();
        if comment.starts_with("///") || comment.starts_with("//!") {
            if comment.contains("# Safety") {
                return true;
            }
            continue;
        }
        // Attributes and blank lines between the docs and the item.
        if code.is_empty() || code.starts_with("#[") || code.starts_with("#!") || code == "]" {
            continue;
        }
        // Signature continuation lines (e.g. `pub(crate) unsafe` split):
        // anything else ends the doc block.
        return false;
    }
    false
}

fn lint_source(path: &str, src: &str) -> Vec<String> {
    let lines = lex_lines(src);
    let mut violations = Vec::new();
    for (ln, kind) in unsafe_sites(&lines) {
        // Functions and traits conventionally carry their contract as a
        // `# Safety` doc section; blocks/impls justify in-line.
        let covered = match kind {
            UnsafeKind::Fn | UnsafeKind::Trait => {
                has_safety_comment(&lines, ln) || has_safety_doc(&lines, ln)
            }
            _ => has_safety_comment(&lines, ln),
        };
        if !covered {
            let what = match kind {
                UnsafeKind::Block => "unsafe block",
                UnsafeKind::Fn => "unsafe fn",
                UnsafeKind::Impl => "unsafe impl",
                UnsafeKind::Trait => "unsafe trait",
                UnsafeKind::ExternBlock => "unsafe extern block",
            };
            let fix = match kind {
                UnsafeKind::Fn | UnsafeKind::Trait => {
                    "add a `# Safety` doc section or a `// SAFETY:` comment"
                }
                _ => "add a `// SAFETY:` comment within the 6 lines above",
            };
            violations.push(format!(
                "{path}:{}: {what} without a safety justification ({fix})",
                ln + 1
            ));
        }
    }
    violations
}

/// Constructs mentioning these tokens are forbidden outright: transmute
/// defeats every type-level invariant the SAFETY comments argue from,
/// and `static mut` is unsynchronized-by-construction (use atomics or
/// `OnceLock`).
fn forbid_in_source(path: &str, src: &str) -> Vec<String> {
    let lines = lex_lines(src);
    let mut violations = Vec::new();
    for (ln, line) in lines.iter().enumerate() {
        let code: Vec<char> = line.code.chars().collect();
        if find_word(&code, 0, "transmute").is_some() {
            violations.push(format!(
                "{path}:{}: `transmute` is forbidden (use typed conversions or raw-pointer casts with a SAFETY argument)",
                ln + 1
            ));
        }
        if let Some(pos) = find_word(&code, 0, "static") {
            let rest: String = code[pos + "static".len()..].iter().collect();
            if rest.trim_start().starts_with("mut ") {
                violations.push(format!(
                    "{path}:{}: `static mut` is forbidden (use atomics or OnceLock)",
                    ln + 1
                ));
            }
        }
    }
    violations
}

/// Opt-in `.unwrap(` forbid for [`UNWRAP_FORBID_ROOTS`] lib code. Test
/// mods are blanked first: a test asserting its own fixture may unwrap.
fn unwrap_forbid_in_source(path: &str, src: &str) -> Vec<String> {
    let mut lines = lex_lines(src);
    blank_test_mods(&mut lines);
    let mut violations = Vec::new();
    for (ln, line) in lines.iter().enumerate() {
        let mut from = 0;
        while let Some(pos) = line.code[from..].find(".unwrap(") {
            violations.push(format!(
                "{path}:{}: `.unwrap()` in lib code (state the invariant with \
                 `.expect(\"…\")` or propagate the error)",
                ln + 1
            ));
            from += pos + ".unwrap(".len();
        }
    }
    violations
}

// ---------------------------------------------------------------------
// Lint-config audit
// ---------------------------------------------------------------------

/// Every workspace member must opt into the shared lint table, and the
/// workspace table must keep `unsafe_op_in_unsafe_fn = "deny"` — this is
/// what makes every implicit unsafe operation inside an `unsafe fn`
/// surface as its own block (and thus its own SAFETY comment).
fn lint_config_audit(root: &Path) -> Vec<String> {
    let mut violations = Vec::new();
    let ws = root.join("Cargo.toml");
    match std::fs::read_to_string(&ws) {
        Ok(text) => {
            if !toml_section_has(&text, "workspace.lints.rust", "unsafe_op_in_unsafe_fn") {
                violations.push(
                    "Cargo.toml: [workspace.lints.rust] must set unsafe_op_in_unsafe_fn = \"deny\""
                        .to_string(),
                );
            }
        }
        Err(e) => violations.push(format!("Cargo.toml: unreadable: {e}")),
    }
    for manifest in member_manifests(root) {
        let rel = manifest
            .strip_prefix(root)
            .unwrap_or(&manifest)
            .display()
            .to_string();
        match std::fs::read_to_string(&manifest) {
            Ok(text) => {
                if !toml_section_has(&text, "lints", "workspace") {
                    violations.push(format!(
                        "{rel}: missing `[lints]\\nworkspace = true` (workspace lint opt-in)"
                    ));
                }
            }
            Err(e) => violations.push(format!("{rel}: unreadable: {e}")),
        }
    }
    violations
}

fn member_manifests(root: &Path) -> Vec<PathBuf> {
    // The workspace root doubles as a package (examples/bins), so its
    // manifest needs the `[lints]` opt-in too — it used to escape this
    // walk along with any crate added under a new parent directory.
    let mut out = vec![root.join("Cargo.toml")];
    for parent in ["crates", "shims"] {
        let Ok(entries) = std::fs::read_dir(root.join(parent)) else {
            continue;
        };
        for entry in entries.flatten() {
            let m = entry.path().join("Cargo.toml");
            if m.is_file() {
                out.push(m);
            }
        }
    }
    let xtask = root.join("xtask/Cargo.toml");
    if xtask.is_file() {
        out.push(xtask);
    }
    out.sort();
    out
}

/// Minimal TOML poke: does `[section]` contain a line starting with
/// `key`? (Good enough for manifests we control; avoids a TOML dep.)
fn toml_section_has(text: &str, section: &str, key: &str) -> bool {
    let header = format!("[{section}]");
    let mut in_section = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_section = line == header;
            continue;
        }
        if in_section && line.starts_with(key) {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------
// Selftest: the gate must actually gate
// ---------------------------------------------------------------------

struct Fixture {
    name: &'static str,
    src: &'static str,
    /// Expected number of SAFETY-lint violations.
    lint: usize,
    /// Expected number of forbid-list violations.
    forbid: usize,
}

const FIXTURES: &[Fixture] = &[
    Fixture {
        name: "bad: bare unsafe block",
        src: "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
        lint: 1,
        forbid: 0,
    },
    Fixture {
        name: "good: commented unsafe block",
        src: "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n",
        lint: 0,
        forbid: 0,
    },
    Fixture {
        name: "bad: SAFETY inside a string does not count",
        src: "fn f(p: *const u8) -> u8 {\n    let _tag = \"// SAFETY: not a comment\";\n    unsafe { *p }\n}\n",
        lint: 1,
        forbid: 0,
    },
    Fixture {
        name: "good: unsafe in a comment is not a site",
        src: "// this fn is not unsafe at all\nfn f() {}\n",
        lint: 0,
        forbid: 0,
    },
    Fixture {
        name: "good: unsafe fn with # Safety doc",
        src: "/// Does a thing.\n///\n/// # Safety\n///\n/// Caller must uphold X.\npub unsafe fn f() {}\n",
        lint: 0,
        forbid: 0,
    },
    Fixture {
        name: "bad: undocumented unsafe fn",
        src: "pub unsafe fn f() {}\n",
        lint: 1,
        forbid: 0,
    },
    Fixture {
        name: "bad: comment too far above the block",
        src: "fn f(p: *const u8) -> u8 {\n    // SAFETY: stale, eight lines up.\n\n\n\n\n\n\n\n    unsafe { *p }\n}\n",
        lint: 1,
        forbid: 0,
    },
    Fixture {
        name: "bad: transmute is forbidden",
        src: "fn f(x: u64) -> f64 {\n    // SAFETY: same size.\n    unsafe { std::mem::transmute(x) }\n}\n",
        lint: 0,
        forbid: 1,
    },
    Fixture {
        name: "bad: static mut is forbidden",
        src: "static mut COUNTER: u64 = 0;\n",
        lint: 0,
        forbid: 1,
    },
    Fixture {
        name: "good: unsafe impl with SAFETY comment",
        src: "struct W(*mut u8);\n// SAFETY: W's pointer is uniquely owned.\nunsafe impl Send for W {}\n",
        lint: 0,
        forbid: 0,
    },
];

fn run_selftest() -> bool {
    let mut ok = true;
    for f in FIXTURES {
        let lint = lint_source("fixture.rs", f.src).len();
        let forbid = forbid_in_source("fixture.rs", f.src).len();
        if lint != f.lint || forbid != f.forbid {
            eprintln!(
                "selftest FAILED [{}]: lint {lint} (want {}), forbid {forbid} (want {})",
                f.name, f.lint, f.forbid
            );
            ok = false;
        } else {
            println!("selftest ok   [{}]", f.name);
        }
    }
    ok &= selftest_unwrap_forbid();
    ok &= selftest_unlisted_member();
    ok &= selftest_orderings();
    if ok {
        println!("selftest: the gate gates");
    }
    ok
}

fn selftest_unwrap_forbid() -> bool {
    let bad = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    let good = "pub fn f(x: Option<u8>) -> u8 { x.expect(\"caller checked\") }\n\
                #[cfg(test)]\nmod tests {\n    fn t(x: Option<u8>) { x.unwrap(); }\n}\n";
    let mut ok = true;
    if unwrap_forbid_in_source("fixture.rs", bad).len() != 1 {
        eprintln!("selftest FAILED [unwrap forbid]: lib unwrap not flagged");
        ok = false;
    }
    if !unwrap_forbid_in_source("fixture.rs", good).is_empty() {
        eprintln!("selftest FAILED [unwrap forbid]: expect/test unwrap flagged");
        ok = false;
    }
    if ok {
        println!("selftest ok   [unwrap forbid: lib flagged, tests exempt]");
    }
    ok
}

/// The lint-config audit must actually fail on a member missing the
/// `[lints] workspace = true` opt-in — proved against a throwaway
/// workspace on disk, since the audit's blind spot was precisely
/// members its walk never visited.
fn selftest_unlisted_member() -> bool {
    let dir = std::env::temp_dir().join(format!("xtask-audit-selftest-{}", std::process::id()));
    let member = dir.join("crates/rogue");
    let cleanup = |dir: &Path| {
        let _ = std::fs::remove_dir_all(dir);
    };
    if std::fs::create_dir_all(&member).is_err() {
        eprintln!("selftest FAILED [unlisted member]: cannot create temp workspace");
        return false;
    }
    let ws = "[workspace]\nmembers = [\"crates/*\"]\n\n[workspace.lints.rust]\nunsafe_op_in_unsafe_fn = \"deny\"\n";
    let rogue = "[package]\nname = \"rogue\"\nversion = \"0.1.0\"\n";
    if std::fs::write(dir.join("Cargo.toml"), ws).is_err()
        || std::fs::write(member.join("Cargo.toml"), rogue).is_err()
    {
        cleanup(&dir);
        eprintln!("selftest FAILED [unlisted member]: cannot write temp manifests");
        return false;
    }
    let violations = lint_config_audit(&dir);
    let flagged = violations.iter().any(|v| v.contains("rogue"));
    let mut ok = flagged;
    if !flagged {
        eprintln!(
            "selftest FAILED [unlisted member]: rogue crate without [lints] not flagged: {violations:?}"
        );
    }
    let fixed = format!("{rogue}\n[lints]\nworkspace = true\n");
    if std::fs::write(member.join("Cargo.toml"), fixed).is_ok() {
        let violations = lint_config_audit(&dir);
        if violations.iter().any(|v| v.contains("rogue")) {
            eprintln!("selftest FAILED [unlisted member]: opted-in crate still flagged");
            ok = false;
        }
    }
    cleanup(&dir);
    if ok {
        println!("selftest ok   [lint-config audit flags a member missing [lints]]");
    }
    ok
}

/// Smoke fixtures for the ordering lint (full coverage lives in
/// `orderings::tests`): a weakened tagged site and an untagged site
/// must be flagged; the tagged original must pass.
fn selftest_orderings() -> bool {
    let rules = match orderings::parse_manifest(
        "[[rule]]\nid = \"pub.rel\"\nsummary = \"publication store\"\nexact = [\"Release\"]\n",
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("selftest FAILED [orderings]: fixture manifest: {e}");
            return false;
        }
    };
    let good = "fn f(a: &AtomicU64) {\n    // ORDERING: pub.rel\n    a.store(1, Ordering::Release);\n}\n";
    let weak = "fn f(a: &AtomicU64) {\n    // ORDERING: pub.rel\n    a.store(1, Ordering::Relaxed);\n}\n";
    let untagged = "fn f(a: &AtomicU64) { a.store(1, Ordering::Release); }\n";
    let mut ok = true;
    if !orderings::lint_sources(&rules, &[("x.rs", good)]).violations.is_empty() {
        eprintln!("selftest FAILED [orderings]: tagged exact site flagged");
        ok = false;
    }
    for (name, src) in [("weakened", weak), ("untagged", untagged)] {
        let v = orderings::lint_sources(&rules, &[("x.rs", src)]).violations;
        if !v.iter().any(|v| v.contains("x.rs")) {
            eprintln!("selftest FAILED [orderings]: {name} site not flagged");
            ok = false;
        }
    }
    if ok {
        println!("selftest ok   [ordering lint: tagged passes, weakened/untagged flagged]");
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_behave() {
        assert!(run_selftest());
    }

    #[test]
    fn lexer_handles_raw_strings_and_lifetimes() {
        let src = "fn f<'a>(s: &'a str) -> char {\n    let _r = r#\"unsafe { nope } // SAFETY: nope\"#;\n    let c: char = 'x';\n    c\n}\n";
        let lines = lex_lines(src);
        assert!(unsafe_sites(&lines).is_empty(), "no real unsafe here");
        assert!(!lines.iter().any(|l| l.comment.contains("SAFETY:")));
    }

    #[test]
    fn lexer_handles_nested_block_comments() {
        let src = "/* outer /* unsafe { } */ still comment */\nfn f() {}\n";
        let lines = lex_lines(src);
        assert!(unsafe_sites(&lines).is_empty());
    }

    #[test]
    fn classify_spots_fn_impl_trait() {
        let src = "unsafe fn a() {}\nunsafe impl Send for X {}\nunsafe trait T {}\nunsafe extern \"C\" {}\n";
        let lines = lex_lines(src);
        let kinds: Vec<UnsafeKind> = unsafe_sites(&lines).into_iter().map(|(_, k)| k).collect();
        assert_eq!(
            kinds,
            vec![
                UnsafeKind::Fn,
                UnsafeKind::Impl,
                UnsafeKind::Trait,
                UnsafeKind::ExternBlock
            ]
        );
    }

    #[test]
    fn window_is_six_lines() {
        let mut src = String::from("// SAFETY: at the edge.\n");
        src.push_str(&"\n".repeat(SAFETY_WINDOW - 1));
        src.push_str("fn f(p: *const u8) -> u8 { unsafe { *p } }\n");
        assert!(lint_source("x.rs", &src).is_empty(), "exactly in window");

        let mut src = String::from("// SAFETY: one too far.\n");
        src.push_str(&"\n".repeat(SAFETY_WINDOW));
        src.push_str("fn f(p: *const u8) -> u8 { unsafe { *p } }\n");
        assert_eq!(lint_source("x.rs", &src).len(), 1, "just out of window");
    }
}
