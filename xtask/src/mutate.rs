//! Systematic concurrency mutation testing: `cargo xtask mutate`.
//!
//! Replaces the three hand-rolled `sed` smokes that used to live in
//! `ci.yml`. Those broke silently as code drifted — `sed` matches
//! nothing, the "mutant" is the original code, the test passes, and the
//! smoke rots into a green no-op. Here every operator is applied
//! through the xtask lexer ([`crate::lexer`]): a pattern must match
//! *code* (never comments or string literals), and a pattern that no
//! longer matches is a loud engine error, not a silent pass.
//!
//! Operator set (curated for this codebase's failure modes):
//!
//! * **Ordering weakening** — `Release→Relaxed`, `Acquire→Relaxed`,
//!   `AcqRel→Acquire`, `SeqCst→AcqRel` at a single site. Killed
//!   *statically* by `xtask orderings`: the manifest rules pin exact
//!   ordering sequences and the committed inventory pins per-sequence
//!   site counts, so any weakening flips a lint or drifts the
//!   inventory. (A dynamic kill would be theater on x86, where TSO
//!   grants acquire/release semantics for free — the lint is the only
//!   honest judge we have without a weaker-memory CI host.)
//! * **Pair-lock sort inversion** — the deadlock-avoidance total order.
//! * **Batch stripe-sort inversion** — the write-group `lock_batch`
//!   acquisition order flipped to descending, breaking the shared
//!   total order with `lock_pair`/`lock_multi`.
//! * **`.rev()` stripping** — hole-backwards → items-forward execution.
//! * **Seqlock stamp flip** — `try_lock` acquires with an even (+2)
//!   stamp instead of odd, erasing the reader-visible write window.
//! * **Fence removal** — drops the `read_validate` Acquire fence.
//! * **Bounds off-by-one** — the path executor walks one step too far.
//! * **SAFETY-comment strip** — the SAFETY lint must notice its
//!   comments disappearing (the old first sed smoke).
//!
//! Modes: `--ci` runs the pinned per-PR subset (every mutant must be
//! killed), `--all` additionally generates the full ordering-weakening
//! matrix over every atomic site in the workspace (scheduled job), and
//! `--selftest` proves the engine itself works: each pinned operator
//! produces a *compiling* mutant, a missing pattern errors loudly, and
//! a deliberately unkillable fixture mutant makes the run fail.
//!
//! Survivors are reported to `target/mutation-report.txt`; a survivor
//! is fatal unless listed (with a reason) in `xtask/mutants-allow.toml`.

use std::path::Path;
use std::process::Command;

use crate::lexer::{blank_test_mods, lex, lex_lines, Class};
use crate::orderings;

/// A single code rewrite, applied through the lexer.
#[derive(Debug, Clone)]
pub enum Op {
    /// Replace the first occurrence of `find` whose every character is
    /// code-class (comments and literals can never match).
    Replace { find: String, replace: String },
    /// Weaken the first `Ordering::<from>` (code-class) whose
    /// surrounding ±3 code lines contain `near` — the guard makes the
    /// mutant drift-proof: if the site moves away, the engine errors.
    Weaken {
        from: String,
        to: String,
        near: String,
    },
    /// Weaken the `k`-th `Ordering::<from>` on 1-based line `line`
    /// (used by the generated full matrix, where the generator and the
    /// applier read the same file in the same run).
    WeakenAt {
        line: usize,
        k: usize,
        from: String,
        to: String,
    },
    /// Delete every comment character on lines whose comment mentions
    /// `SAFETY:` — the lexer-applied equivalent of the old
    /// `sed '/\/\/ SAFETY:/d'` smoke, minus the line-number churn.
    StripSafety,
}

/// How a mutant must die.
#[derive(Debug, Clone)]
pub enum Kill {
    /// `xtask orderings` (lint + inventory drift) must report ≥1
    /// violation. In-process; no build required.
    Orderings,
    /// The SAFETY lint must report ≥1 violation. In-process.
    Safety,
    /// `cargo test -q -p <pkg> --lib <filter>` must fail.
    Test {
        pkg: &'static str,
        filter: &'static str,
    },
}

pub struct Mutant {
    pub id: String,
    /// Repo-relative path of the mutated file.
    pub file: String,
    pub op: Op,
    pub kill: Kill,
    /// What property the mutant probes (for the report).
    pub note: &'static str,
}

fn replace_first_code_match(src: &str, find: &str, replace: &str) -> Option<String> {
    let lexed = lex(src);
    let pat: Vec<char> = find.chars().collect();
    let n = lexed.chars.len();
    let mut i = 0;
    while i + pat.len() <= n {
        if lexed.chars[i..i + pat.len()] == pat[..]
            && lexed.classes[i..i + pat.len()]
                .iter()
                .all(|&c| c == Class::Code)
        {
            let mut out: String = lexed.chars[..i].iter().collect();
            out.push_str(replace);
            out.extend(&lexed.chars[i + pat.len()..]);
            return Some(out);
        }
        i += 1;
    }
    None
}

/// (line, k) → char range of the k-th code-class `Ordering::<from>`
/// occurrence on that 1-based line; also usable as an enumerator when
/// `want` is `None`.
fn ordering_occurrences(src: &str, from: &str) -> Vec<(usize, usize, usize)> {
    // (1-based line, char start, char end) for each code-class match.
    let lexed = lex(src);
    let pat: Vec<char> = format!("Ordering::{from}").chars().collect();
    let mut out = Vec::new();
    let mut line = 1usize;
    let n = lexed.chars.len();
    let mut i = 0;
    while i < n {
        if lexed.chars[i] == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if i + pat.len() <= n
            && lexed.chars[i..i + pat.len()] == pat[..]
            && lexed.classes[i..i + pat.len()]
                .iter()
                .all(|&c| c == Class::Code)
            && (i == 0 || !crate::lexer::is_ident(lexed.chars[i - 1]))
            && (i + pat.len() == n || !crate::lexer::is_ident(lexed.chars[i + pat.len()]))
        {
            out.push((line, i, i + pat.len()));
            i += pat.len();
        } else {
            i += 1;
        }
    }
    out
}

fn splice(src: &str, start: usize, end: usize, replacement: &str) -> String {
    let chars: Vec<char> = src.chars().collect();
    let mut out: String = chars[..start].iter().collect();
    out.push_str(replacement);
    out.extend(&chars[end..]);
    out
}

/// Applies `op` to `src`, or explains why it no longer matches.
pub fn apply(src: &str, op: &Op) -> Result<String, String> {
    match op {
        Op::Replace { find, replace } => replace_first_code_match(src, find, replace)
            .ok_or_else(|| format!("pattern not found in code (operator drifted): `{find}`")),
        Op::Weaken { from, to, near } => {
            let lines = lex_lines(src);
            let occurrences = ordering_occurrences(src, from);
            // Same-line guard matches win over the ±3-line window, so a
            // guard like `fetch_or` picks its own line even when another
            // site sits a line or two above.
            for window in [0usize, 3] {
                for &(line, start, end) in &occurrences {
                    let lo = line.saturating_sub(1 + window); // 0-based
                    let hi = (line - 1 + window).min(lines.len().saturating_sub(1));
                    let ctx: String = lines[lo..=hi]
                        .iter()
                        .map(|l| l.code.as_str())
                        .collect::<Vec<_>>()
                        .join("\n");
                    if ctx.contains(near.as_str()) {
                        return Ok(splice(src, start, end, &format!("Ordering::{to}")));
                    }
                }
            }
            Err(format!(
                "no code-class `Ordering::{from}` near `{near}` (operator drifted)"
            ))
        }
        Op::WeakenAt { line, k, from, to } => {
            let on_line: Vec<_> = ordering_occurrences(src, from)
                .into_iter()
                .filter(|(l, _, _)| l == line)
                .collect();
            match on_line.get(*k) {
                Some(&(_, start, end)) => Ok(splice(src, start, end, &format!("Ordering::{to}"))),
                None => Err(format!(
                    "no {k}-th `Ordering::{from}` on line {line} (generator/applier drift)"
                )),
            }
        }
        Op::StripSafety => {
            let lexed = lex(src);
            // Mark lines whose comment text contains SAFETY:.
            let lines = lex_lines(src);
            let strip: Vec<bool> = lines.iter().map(|l| l.comment.contains("SAFETY:")).collect();
            if !strip.iter().any(|&b| b) {
                return Err("no SAFETY: comments to strip (operator drifted)".into());
            }
            let mut out = String::new();
            let mut line = 0usize;
            for (&c, &class) in lexed.chars.iter().zip(lexed.classes.iter()) {
                if c == '\n' {
                    line += 1;
                    out.push(c);
                    continue;
                }
                if class == Class::Comment && strip.get(line).copied().unwrap_or(false) {
                    continue;
                }
                out.push(c);
            }
            Ok(out)
        }
    }
}

/// Restores the original file content on scope exit (including panics),
/// with a fresh mtime so later builds never reuse a stale mutant
/// artifact — the failure mode the old CI smokes dodged with `cp`.
struct Restore<'a> {
    path: &'a Path,
    original: &'a str,
}

impl Drop for Restore<'_> {
    fn drop(&mut self) {
        if let Err(e) = std::fs::write(self.path, self.original) {
            eprintln!(
                "mutate: FAILED to restore {} — working tree is mutated! ({e})",
                self.path.display()
            );
        }
    }
}

fn kill_check(root: &Path, kill: &Kill) -> Result<bool, String> {
    match kill {
        Kill::Orderings => Ok(!orderings::check(root).is_empty()),
        Kill::Safety => Ok(!crate::safety_lint(root).is_empty()),
        Kill::Test { pkg, filter } => {
            let status = Command::new(env!("CARGO"))
                .args(["test", "-q", "-p", pkg, "--lib", filter])
                .current_dir(root)
                .status()
                .map_err(|e| format!("could not run cargo test: {e}"))?;
            Ok(!status.success())
        }
    }
}

fn kill_name(kill: &Kill) -> String {
    match kill {
        Kill::Orderings => "xtask orderings".into(),
        Kill::Safety => "SAFETY lint".into(),
        Kill::Test { pkg, filter } => format!("cargo test -p {pkg} --lib {filter}"),
    }
}

/// The pinned per-PR subset. The first three are the lexer-applied
/// equivalents of the retired sed smokes; the rest cover the remaining
/// operators on the seqlock/displacement protocol core.
pub fn pinned() -> Vec<Mutant> {
    let m = |id: &str, file: &str, op: Op, kill: Kill, note: &'static str| Mutant {
        id: id.into(),
        file: file.into(),
        op,
        kill,
        note,
    };
    vec![
        m(
            "safety-strip-map",
            "crates/cuckoo/src/map.rs",
            Op::StripSafety,
            Kill::Safety,
            "retired sed smoke 1: deleting SAFETY comments must trip the lint",
        ),
        m(
            "lock-pair-sort-invert",
            "crates/cuckoo/src/sync.rs",
            Op::Replace {
                find: "if s1 <= s2 { (s1, s2) } else { (s2, s1) }".into(),
                replace: "if s1 <= s2 { (s2, s1) } else { (s1, s2) }".into(),
            },
            Kill::Test {
                pkg: "cuckoo",
                filter: "lock_pair_sorts",
            },
            "retired sed smoke 2: pair-lock total order inverted (deadlock seed)",
        ),
        m(
            "exec-items-forward",
            "crates/cuckoo/src/search/exec.rs",
            Op::Replace {
                find: "for i in (0..path.len() - 1).rev()".into(),
                replace: "for i in 0..path.len() - 1".into(),
            },
            Kill::Test {
                pkg: "cuckoo",
                filter: "hole_backwards_executes",
            },
            "retired sed smoke 3: items-forward execution lets readers miss live keys",
        ),
        m(
            "seqlock-even-stamp",
            "crates/cuckoo/src/sync.rs",
            Op::Replace {
                find: "(cur + 1) | LOCKED".into(),
                replace: "(cur + 2) | LOCKED".into(),
            },
            Kill::Test {
                pkg: "cuckoo",
                filter: "lock_sets_odd_version",
            },
            "seqlock stamp flip: even version during the write window hides writers",
        ),
        m(
            "seqlock-fence-removal",
            "crates/cuckoo/src/sync.rs",
            Op::Replace {
                find: "std::sync::atomic::fence(Ordering::Acquire);".into(),
                replace: "();".into(),
            },
            Kill::Orderings,
            "read_validate loses its fence: the committed inventory pins the site count",
        ),
        m(
            "exec-bounds-off-by-one",
            "crates/cuckoo/src/search/exec.rs",
            Op::Replace {
                find: "(0..path.len() - 1).rev()".into(),
                replace: "(0..path.len()).rev()".into(),
            },
            Kill::Test {
                pkg: "cuckoo",
                filter: "hole_backwards",
            },
            "path executor walks one displacement past the vacancy",
        ),
        m(
            "weaken-unlock-release",
            "crates/cuckoo/src/sync.rs",
            Op::Weaken {
                from: "Release".into(),
                to: "Relaxed".into(),
                near: "!LOCKED) + 1".into(),
            },
            Kill::Orderings,
            "seqlock unlock loses its Release publication",
        ),
        m(
            "weaken-trylock-acquire",
            "crates/cuckoo/src/sync.rs",
            Op::Weaken {
                from: "Acquire".into(),
                to: "Relaxed".into(),
                near: "compare_exchange_weak".into(),
            },
            Kill::Orderings,
            "seqlock try_lock CAS loses its Acquire edge",
        ),
        m(
            "weaken-bucket-occupied",
            "crates/cuckoo/src/bucket.rs",
            Op::Weaken {
                from: "Release".into(),
                to: "Relaxed".into(),
                near: "fetch_or".into(),
            },
            Kill::Orderings,
            "occupied-bit publication weakened under optimistic readers",
        ),
        m(
            "weaken-chunk-done",
            "crates/cuckoo/src/map.rs",
            Op::Weaken {
                from: "Release".into(),
                to: "Relaxed".into(),
                near: "CHUNK_DONE".into(),
            },
            Kill::Orderings,
            "migration chunk-done store weakened: helpers could read a torn chunk",
        ),
        m(
            "batch-stripe-sort-invert",
            "crates/cuckoo/src/sync.rs",
            Op::Replace {
                find: "stripes[..m].sort_unstable();".into(),
                replace: "stripes[..m].sort_unstable_by(|a, b| b.cmp(a));".into(),
            },
            Kill::Test {
                pkg: "cuckoo",
                filter: "lock_batch",
            },
            "batched write-group stripe sort inverted (deadlock seed vs pair/multi order)",
        ),
        m(
            "weaken-exec-displacements",
            "crates/cuckoo/src/search/exec.rs",
            Op::Weaken {
                from: "SeqCst".into(),
                to: "AcqRel".into(),
                near: "displacements".into(),
            },
            Kill::Orderings,
            "scan's displacement counter loses SeqCst (fuzzy snapshots tear)",
        ),
    ]
}

/// The full matrix: one weakening mutant per weakenable ordering token
/// at every product atomic site in the workspace. All are killed
/// statically (exact-sequence rules, or inventory drift for
/// allows-based rules), so the matrix runs without a single build.
pub fn generate_weakenings(root: &Path) -> Vec<Mutant> {
    const WEAKEN: &[(&str, &str)] = &[
        ("Release", "Relaxed"),
        ("Acquire", "Relaxed"),
        ("AcqRel", "Acquire"),
        ("SeqCst", "AcqRel"),
    ];
    let mut out = Vec::new();
    for dir in orderings::lint_roots(root) {
        for file in crate::rust_files(&dir) {
            let Ok(src) = std::fs::read_to_string(&file) else {
                continue;
            };
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .display()
                .to_string();
            // Skip sites inside #[cfg(test)] mods — the ordering lint
            // does not see them, so nothing could kill those mutants.
            let mut lines = lex_lines(&src);
            blank_test_mods(&mut lines);
            for (from, to) in WEAKEN {
                let mut per_line_k = std::collections::BTreeMap::new();
                for (line, _, _) in ordering_occurrences(&src, from) {
                    let k = per_line_k.entry(line).or_insert(0usize);
                    let in_product = lines
                        .get(line - 1)
                        .is_some_and(|l| l.code.contains("Ordering::"));
                    if in_product {
                        out.push(Mutant {
                            id: format!("weaken:{rel}:{line}#{k}:{from}->{to}"),
                            file: rel.clone(),
                            op: Op::WeakenAt {
                                line,
                                k: *k,
                                from: (*from).into(),
                                to: (*to).into(),
                            },
                            kill: Kill::Orderings,
                            note: "generated ordering weakening (killed statically)",
                        });
                    }
                    *k += 1;
                }
            }
        }
    }
    out
}

fn parse_allowlist(root: &Path) -> Vec<(String, String)> {
    let Ok(text) = std::fs::read_to_string(root.join("xtask/mutants-allow.toml")) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let (mut id, mut reason) = (None::<String>, None::<String>);
    let flush = |id: &mut Option<String>, reason: &mut Option<String>, out: &mut Vec<_>| {
        if let Some(i) = id.take() {
            out.push((i, reason.take().unwrap_or_default()));
        }
    };
    for line in text.lines() {
        let line = line.trim();
        if line == "[[allow]]" {
            flush(&mut id, &mut reason, &mut out);
        } else if let Some(v) = line.strip_prefix("id = ") {
            id = Some(v.trim_matches('"').to_string());
        } else if let Some(v) = line.strip_prefix("reason = ") {
            reason = Some(v.trim_matches('"').to_string());
        }
    }
    flush(&mut id, &mut reason, &mut out);
    out
}

/// Applies each mutant in turn (mutate → kill-check → restore) and
/// writes the report. Returns `false` if any mutant survived without an
/// allowlist entry, or the engine itself failed.
pub fn run_mutants(root: &Path, mutants: &[Mutant], report_name: &str) -> bool {
    let allow = parse_allowlist(root);
    let mut report = String::new();
    let mut killed = 0usize;
    let mut survived: Vec<&Mutant> = Vec::new();
    let mut allowed = 0usize;
    let mut errors = 0usize;

    for m in mutants {
        let path = root.join(&m.file);
        let original = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("mutate [{}]: unreadable {}: {e}", m.id, m.file);
                errors += 1;
                continue;
            }
        };
        let mutated = match apply(&original, &m.op) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("mutate [{}]: ENGINE ERROR: {e}", m.id);
                report.push_str(&format!("ERROR     {}  {e}\n", m.id));
                errors += 1;
                continue;
            }
        };
        if mutated == original {
            eprintln!("mutate [{}]: ENGINE ERROR: mutant is identical to original", m.id);
            errors += 1;
            continue;
        }
        let verdict = {
            let _restore = Restore {
                path: &path,
                original: &original,
            };
            match std::fs::write(&path, &mutated) {
                Ok(()) => kill_check(root, &m.kill),
                Err(e) => Err(format!("could not write mutant: {e}")),
            }
            // `_restore` drops here: original bytes back, fresh mtime.
        };
        match verdict {
            Ok(true) => {
                killed += 1;
                println!("mutate [{}]: killed by {}", m.id, kill_name(&m.kill));
                report.push_str(&format!("KILLED    {}  ({})\n", m.id, kill_name(&m.kill)));
            }
            Ok(false) => {
                if let Some((_, reason)) = allow.iter().find(|(id, _)| id == &m.id) {
                    allowed += 1;
                    println!("mutate [{}]: SURVIVED (allowlisted: {reason})", m.id);
                    report.push_str(&format!("ALLOWED   {}  ({reason})\n", m.id));
                } else {
                    eprintln!(
                        "mutate [{}]: SURVIVED `{}` — {}",
                        m.id,
                        kill_name(&m.kill),
                        m.note
                    );
                    report.push_str(&format!(
                        "SURVIVED  {}  (not killed by {}; {})\n",
                        m.id,
                        kill_name(&m.kill),
                        m.note
                    ));
                    survived.push(m);
                }
            }
            Err(e) => {
                eprintln!("mutate [{}]: ENGINE ERROR: {e}", m.id);
                report.push_str(&format!("ERROR     {}  {e}\n", m.id));
                errors += 1;
            }
        }
    }

    let summary = format!(
        "mutate: {} mutant(s): {killed} killed, {} survived, {allowed} allowlisted, {errors} error(s)",
        mutants.len(),
        survived.len()
    );
    report.push_str(&summary);
    report.push('\n');
    let report_path = root.join("target").join(report_name);
    let _ = std::fs::create_dir_all(root.join("target"));
    if let Err(e) = std::fs::write(&report_path, &report) {
        eprintln!("mutate: could not write report {}: {e}", report_path.display());
    } else {
        println!("mutate: report at {}", report_path.display());
    }
    if survived.is_empty() && errors == 0 {
        println!("{summary}");
        true
    } else {
        eprintln!("{summary}");
        false
    }
}

pub fn run_ci(root: &Path) -> bool {
    run_mutants(root, &pinned(), "mutation-report.txt")
}

pub fn run_all(root: &Path) -> bool {
    let mut mutants = pinned();
    let generated = generate_weakenings(root);
    println!(
        "mutate --all: {} pinned + {} generated ordering weakenings",
        mutants.len(),
        generated.len()
    );
    mutants.extend(generated);
    run_mutants(root, &mutants, "mutation-report-full.txt")
}

/// Proves the engine works: every pinned operator produces a mutant
/// that differs from the original *and compiles*; a missing pattern is
/// a loud error; and an unkillable mutant fails the run.
pub fn run_selftest(root: &Path) -> bool {
    let mut ok = true;

    // 1. Every pinned mutant applies cleanly and compiles.
    for m in pinned() {
        let path = root.join(&m.file);
        let original = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("mutate selftest [{}]: unreadable {}: {e}", m.id, m.file);
                ok = false;
                continue;
            }
        };
        let mutated = match apply(&original, &m.op) {
            Ok(s) if s != original => s,
            Ok(_) => {
                eprintln!("mutate selftest [{}]: mutant identical to original", m.id);
                ok = false;
                continue;
            }
            Err(e) => {
                eprintln!("mutate selftest [{}]: {e}", m.id);
                ok = false;
                continue;
            }
        };
        let pkg = m
            .file
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("cuckoo")
            .to_string();
        let compiled = {
            let _restore = Restore {
                path: &path,
                original: &original,
            };
            std::fs::write(&path, &mutated).is_ok()
                && Command::new(env!("CARGO"))
                    .args(["check", "-q", "-p", &pkg, "--lib"])
                    .current_dir(root)
                    .status()
                    .map(|s| s.success())
                    .unwrap_or(false)
        };
        if compiled {
            println!("mutate selftest [{}]: applies and compiles", m.id);
        } else {
            eprintln!("mutate selftest [{}]: mutant does not compile", m.id);
            ok = false;
        }
    }

    // 2. A drifted pattern is a loud error, not a silent no-op pass.
    let drifted = Mutant {
        id: "selftest-drifted-pattern".into(),
        file: "crates/cuckoo/src/sync.rs".into(),
        op: Op::Replace {
            find: "this_pattern_exists_nowhere_in_the_tree".into(),
            replace: "x".into(),
        },
        kill: Kill::Orderings,
        note: "fixture: must be reported as an engine error",
    };
    if run_mutants(root, std::slice::from_ref(&drifted), "mutation-report-selftest.txt") {
        eprintln!("mutate selftest: drifted pattern did NOT fail the run");
        ok = false;
    } else {
        println!("mutate selftest: drifted pattern errors loudly");
    }

    // 3. A surviving mutant fails the run: mutate a test-only constant
    // the ordering lint cannot see.
    let survivor = Mutant {
        id: "selftest-survivor".into(),
        file: "crates/cuckoo/src/search/exec.rs".into(),
        op: Op::Replace {
            find: "0xAA".into(),
            replace: "0xAB".into(),
        },
        kill: Kill::Orderings,
        note: "fixture: invisible to the static kill, must survive",
    };
    if run_mutants(root, std::slice::from_ref(&survivor), "mutation-report-selftest.txt") {
        eprintln!("mutate selftest: unkilled mutant did NOT fail the run");
        ok = false;
    } else {
        println!("mutate selftest: surviving mutant fails the run");
    }

    // 4. The working tree is pristine again.
    for m in pinned() {
        let path = root.join(&m.file);
        if let Ok(now) = std::fs::read_to_string(&path) {
            if apply(&now, &m.op).is_err() && !matches!(m.op, Op::StripSafety) {
                eprintln!("mutate selftest: {} not restored?", m.file);
                ok = false;
            }
        }
    }

    if ok {
        println!("mutate selftest: the engine mutates, kills, and restores");
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replace_skips_comments_and_strings() {
        let src = "// for i in (0..n).rev()\nlet s = \"for i in (0..n).rev()\";\nfor i in (0..n).rev() {}\n";
        let out = replace_first_code_match(src, "for i in (0..n).rev()", "for i in 0..n").unwrap();
        assert!(out.contains("// for i in (0..n).rev()"), "comment untouched");
        assert!(out.contains("\"for i in (0..n).rev()\""), "string untouched");
        assert!(out.contains("for i in 0..n {}"), "code mutated");
    }

    #[test]
    fn replace_errors_on_missing_pattern() {
        assert!(replace_first_code_match("let x = 1;\n", "nope", "x").is_none());
    }

    #[test]
    fn weaken_near_guard_selects_the_right_site() {
        let src = "a.store(1, Ordering::Release);\n// target below\nb.fetch_or(2, Ordering::Release);\n";
        let out = apply(
            src,
            &Op::Weaken {
                from: "Release".into(),
                to: "Relaxed".into(),
                near: "fetch_or".into(),
            },
        )
        .unwrap();
        assert!(out.contains("a.store(1, Ordering::Release)"), "first site kept");
        assert!(out.contains("b.fetch_or(2, Ordering::Relaxed)"), "guarded site weakened");
    }

    #[test]
    fn weaken_errors_when_near_guard_fails() {
        let src = "a.store(1, Ordering::Release);\n";
        assert!(apply(
            src,
            &Op::Weaken {
                from: "Release".into(),
                to: "Relaxed".into(),
                near: "fetch_or".into(),
            },
        )
        .is_err());
    }

    #[test]
    fn weaken_at_addresses_line_and_occurrence() {
        let src = "a.load(Ordering::Acquire);\ncas(Ordering::Acquire, Ordering::Acquire);\n";
        let out = apply(
            src,
            &Op::WeakenAt {
                line: 2,
                k: 1,
                from: "Acquire".into(),
                to: "Relaxed".into(),
            },
        )
        .unwrap();
        assert_eq!(
            out,
            "a.load(Ordering::Acquire);\ncas(Ordering::Acquire, Ordering::Relaxed);\n"
        );
    }

    #[test]
    fn strip_safety_removes_only_safety_comments() {
        let src = "// SAFETY: p is valid.\nunsafe { *p }\n// just a note\nlet x = 1;\n";
        let out = apply(src, &Op::StripSafety).unwrap();
        assert!(!out.contains("SAFETY"));
        assert!(out.contains("// just a note"));
        assert!(out.contains("unsafe { *p }"));
        // Line count unchanged: the lint's line numbers stay meaningful.
        assert_eq!(out.lines().count(), src.lines().count());
    }

    #[test]
    fn pinned_mutants_apply_to_the_real_tree() {
        // The in-repo halves of the selftest (no cargo): every pinned
        // pattern still matches, so none of them has silently rotted —
        // the exact failure mode of the retired sed smokes.
        let root = crate::repo_root();
        for m in pinned() {
            let src = std::fs::read_to_string(root.join(&m.file))
                .unwrap_or_else(|e| panic!("{}: {e}", m.file));
            let mutated = apply(&src, &m.op).unwrap_or_else(|e| panic!("[{}] {e}", m.id));
            assert_ne!(mutated, src, "[{}] mutant must differ", m.id);
        }
    }

    #[test]
    fn generated_matrix_covers_the_protocol_core() {
        let root = crate::repo_root();
        let all = generate_weakenings(&root);
        assert!(
            all.len() >= 100,
            "expected a substantial matrix, got {}",
            all.len()
        );
        for probe in [
            "crates/cuckoo/src/sync.rs",
            "crates/cuckoo/src/bucket.rs",
            "crates/cuckoo/src/map.rs",
        ] {
            assert!(
                all.iter().any(|m| m.file == probe),
                "no generated mutants in {probe}"
            );
        }
    }
}
