//! The `cuckood` binary: `cargo run --release --bin cuckood -- [OPTIONS]`.
//!
//! Thin wrapper so the binary lives in the workspace root package (where
//! `cargo run --bin cuckood` finds it); everything real is in
//! `crates/server`.

fn main() {
    if let Err(msg) = server::run_cli(std::env::args().skip(1)) {
        eprintln!("{msg}");
        std::process::exit(2);
    }
}
