//! Umbrella crate for the EuroSys 2014 concurrent-cuckoo-hashing
//! reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can
//! use one dependency:
//!
//! - [`cuckoo`] — the hash tables (cuckoo+, MemC3 baseline, elided
//!   variant, libcuckoo-style general map);
//! - [`htm`] — the software transactional memory / lock-elision
//!   substrate standing in for Intel TSX;
//! - [`baselines`] — the comparison tables (dense open addressing, node
//!   chaining, TBB-style chaining);
//! - [`cache`] — the MemC3-style CLOCK cache built on the cuckoo table;
//! - [`workload`] — workload generation and throughput measurement.

pub use baselines;
pub use cache;
pub use cuckoo;
pub use htm;
pub use workload;
